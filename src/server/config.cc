#include "server/config.h"

#include <cstdlib>
#include <cstring>

#include "epalloc/allocator.h"

namespace hart::server {

namespace {

/// strtoull with full-string validation ("12x" and "" are errors).
bool parse_u64(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_latency(const std::string& s, pmem::LatencyConfig* lat) {
  const size_t slash = s.find('/');
  if (slash == std::string::npos) return false;
  uint64_t w = 0;
  uint64_t r = 0;
  if (!parse_u64(s.substr(0, slash).c_str(), &w) ||
      !parse_u64(s.substr(slash + 1).c_str(), &r))
    return false;
  lat->pm_write_ns = static_cast<uint32_t>(w);
  lat->pm_read_ns = static_cast<uint32_t>(r);
  return true;
}

const char* alloc_kind_name(epalloc::AllocOptions::Kind k) {
  switch (k) {
    case epalloc::AllocOptions::Kind::kLegacy: return "legacy";
    case epalloc::AllocOptions::Kind::kStriped: return "striped";
    default: return "auto";
  }
}

/// One flag position: the flag itself plus, for valued flags, argv[*i+1].
/// A small state machine shared by both matchers below.
struct ArgCursor {
  int argc;
  char** argv;
  int* i;
  std::string* err;

  [[nodiscard]] std::string flag() const { return argv[*i]; }
  /// The flag's value, advancing past it; nullptr (and *err set) when the
  /// command line ends at the flag.
  const char* value() {
    if (*i + 1 >= argc) {
      *err = flag() + " needs a value";
      return nullptr;
    }
    return argv[++*i];
  }
  bool u64(uint64_t* out) {
    const std::string f = flag();
    const char* v = value();
    if (v == nullptr) return false;
    if (!parse_u64(v, out)) {
      *err = f + ": not a number: '" + std::string(v) + "'";
      return false;
    }
    return true;
  }
};

}  // namespace

FlagParse parse_server_flag(int argc, char** argv, int* i,
                            Hartd::Options* opts, std::string* err) {
  ArgCursor c{argc, argv, i, err};
  const std::string a = argv[*i];
  uint64_t n = 0;
  if (a == "--shards") {
    if (!c.u64(&n)) return FlagParse::kError;
    opts->shards = n;
  } else if (a == "--batch") {
    if (!c.u64(&n)) return FlagParse::kError;
    opts->batch_size = n;
  } else if (a == "--queue") {
    if (!c.u64(&n)) return FlagParse::kError;
    opts->queue_capacity = n;
  } else if (a == "--arena-dir") {
    const char* v = c.value();
    if (v == nullptr) return FlagParse::kError;
    opts->arena_dir = v;
  } else if (a == "--arena-mb") {
    if (!c.u64(&n)) return FlagParse::kError;
    opts->arena_mb = n;
  } else if (a == "--latency") {
    const char* v = c.value();
    if (v == nullptr) return FlagParse::kError;
    if (!parse_latency(v, &opts->latency)) {
      *err = "--latency wants W/R nanoseconds, e.g. 300/100";
      return FlagParse::kError;
    }
  } else if (a == "--spin-latency") {
    opts->defer_latency = false;
  } else if (a == "--bloom-bits-per-key") {
    if (!c.u64(&n)) return FlagParse::kError;
    opts->bloom_bits_per_key = n;
  } else if (a == "--rwlock-reads") {
    opts->hart.rwlock_reads = true;
  } else if (a == "--check") {
    opts->check = true;
  } else if (a == "--legacy-alloc") {
    opts->hart.alloc.kind = epalloc::AllocOptions::Kind::kLegacy;
  } else if (a == "--alloc-stripes") {
    if (!c.u64(&n)) return FlagParse::kError;
    if (n == 0 || n > epalloc::AllocOptions::kMaxStripes) {
      *err = "--alloc-stripes wants 1.." +
             std::to_string(epalloc::AllocOptions::kMaxStripes);
      return FlagParse::kError;
    }
    opts->hart.alloc.stripes = static_cast<uint32_t>(n);
  } else if (a == "--eager-meta") {
    opts->hart.alloc.batched_meta = false;
  } else {
    return FlagParse::kNoMatch;
  }
  return FlagParse::kOk;
}

bool parse_config(int argc, char** argv, Config* cfg, std::string* err) {
  for (int i = 1; i < argc; ++i) {
    switch (parse_server_flag(argc, argv, &i, &cfg->service, err)) {
      case FlagParse::kOk: continue;
      case FlagParse::kError: return false;
      case FlagParse::kNoMatch: break;
    }
    ArgCursor c{argc, argv, &i, err};
    const std::string a = argv[i];
    uint64_t n = 0;
    if (a == "--help" || a == "-h") {
      cfg->show_help = true;
    } else if (a == "--print-config") {
      cfg->print_config = true;
    } else if (a == "--port") {
      if (!c.u64(&n)) return false;
      cfg->port = static_cast<long>(n);
    } else if (a == "--port-file") {
      const char* v = c.value();
      if (v == nullptr) return false;
      cfg->port_file = v;
    } else if (a == "--follow") {
      cfg->service.follow = true;
    } else if (a == "--replicate-to") {
      const char* v = c.value();
      if (v == nullptr) return false;
      const std::string list = v;
      size_t start = 0;
      while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const std::string one =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!one.empty()) cfg->service.replicate_to.push_back(one);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (cfg->service.replicate_to.empty()) {
        *err = "--replicate-to wants host:port[,host:port...]";
        return false;
      }
    } else if (a == "--ack-policy") {
      const char* v = c.value();
      if (v == nullptr) return false;
      if (std::strcmp(v, "local") == 0) {
        cfg->service.ack_policy = repl::AckPolicy::kLocal;
      } else if (std::strcmp(v, "quorum") == 0) {
        cfg->service.ack_policy = repl::AckPolicy::kQuorum;
      } else {
        *err = "--ack-policy wants local|quorum";
        return false;
      }
    } else if (a == "--repl-log") {
      if (!c.u64(&n)) return false;
      cfg->service.repl_log_batches = n;
    } else if (a == "--repl-window") {
      if (!c.u64(&n)) return false;
      cfg->service.repl_window = n;
    } else if (a == "--stats-dump") {
      if (!c.u64(&n)) return false;
      cfg->stats_dump_secs = static_cast<long>(n);
    } else if (a == "--trace-out") {
      const char* v = c.value();
      if (v == nullptr) return false;
      cfg->trace_out = v;
    } else if (a == "--trace-sample") {
      if (!c.u64(&n)) return false;
      cfg->service.trace_sample = n;
    } else if (a == "--slow-op-us") {
      if (!c.u64(&n)) return false;
      cfg->service.slow_op_us = n;
    } else {
      *err = "unknown flag '" + a + "' (--help)";
      return false;
    }
  }
  if (cfg->show_help || cfg->print_config) return true;
  return validate_config(*cfg, err);
}

bool validate_config(const Config& cfg, std::string* err) {
  if (cfg.port < 0 || cfg.port > 65535) {
    *err = "--port wants 0..65535";
    return false;
  }
  if (cfg.service.shards == 0) {
    *err = "--shards must be >= 1";
    return false;
  }
  if (cfg.service.batch_size == 0) {
    *err = "--batch must be >= 1";
    return false;
  }
  if (cfg.service.queue_capacity == 0) {
    *err = "--queue must be >= 1";
    return false;
  }
  if (cfg.service.ack_policy == repl::AckPolicy::kQuorum &&
      cfg.service.replicate_to.empty()) {
    *err =
        "--ack-policy quorum needs --replicate-to; acks would otherwise "
        "never release";
    return false;
  }
  if (cfg.service.follow && !cfg.service.replicate_to.empty()) {
    *err = "--follow and --replicate-to are mutually exclusive (a follower "
           "becomes a replicating primary only via PROMOTE)";
    return false;
  }
  return true;
}

std::string usage_text(const char* argv0) {
  std::string s = "usage: ";
  s += argv0;
  s +=
      " [options]\n"
      "  --port N        TCP port on 127.0.0.1 (0 = ephemeral; default 7677)\n"
      "  --port-file P   write the bound port to file P (for scripts)\n"
      "  --shards N      number of HART shards               (default 4)\n"
      "  --batch N       max requests per group-commit batch (default 32)\n"
      "  --queue N       per-shard submission queue capacity (default 4096)\n"
      "  --arena-dir D   file-backed shard arenas in D (relative paths\n"
      "                  resolve under $HART_ARENA_DIR); omit = in-memory\n"
      "  --arena-mb N    per-shard arena MiB (default $HART_ARENA_MB or 256)\n"
      "  --latency W/R   PM write/read latency ns (e.g. 300/100; default off)\n"
      "  --spin-latency  busy-wait injected latency inside each persist\n"
      "                  (default: bank it, pay per batch with a sleep)\n"
      "  --legacy-alloc  ablation: the original single-lock EPallocator\n"
      "                  instead of the striped per-DIMM sub-allocators\n"
      "                  (also selectable via HART_LEGACY_ALLOC=1)\n"
      "  --alloc-stripes N  sub-allocator stripes per shard arena\n"
      "                  (default: hardware threads, capped at 8)\n"
      "  --eager-meta    ablation: persist every chunk-header change at the\n"
      "                  op instead of batching them onto the epoch fence\n"
      "  --bloom-bits-per-key N  per-shard counting Bloom filter in front\n"
      "                  of the Hart: the dispatcher answers definitively-\n"
      "                  absent GET/MGET keys without touching the shard\n"
      "                  (10 is reasonable, ~0.8% false positives; 0 = off)\n"
      "  --rwlock-reads  ablation: the paper's shared-lock read path\n"
      "                  instead of lock-free optimistic reads (GETs then\n"
      "                  queue behind shard writes again)\n"
      "  --check         enable PMCheck on every shard arena\n"
      "  --follow        start as a replication follower: client writes are\n"
      "                  rejected (not-primary), REPL_BATCH streams apply,\n"
      "                  reads serve stale-tolerant; PROMOTE flips to primary\n"
      "  --replicate-to L  ship every durable batch to followers, L =\n"
      "                  host:port[,host:port...]\n"
      "  --ack-policy P  local: ack writes after the local fence (default)\n"
      "                  quorum: ack only after a majority of followers\n"
      "                  confirmed the batch's fence\n"
      "  --repl-log N    per-stream replication log retention, in wire\n"
      "                  batches (default 4096)\n"
      "  --repl-window N max unconfirmed wire batches per follower link\n"
      "                  (default 64)\n"
      "  --stats-dump N  print a Prometheus-text metrics snapshot to stdout\n"
      "                  every N seconds (and once at shutdown)\n"
      "  --trace-out F   record a trace of batches/fences/recovery and\n"
      "                  write chrome://tracing JSON to F at shutdown\n"
      "  --trace-sample N  dispatcher-side request tracing: stamp every Nth\n"
      "                  unsampled KV request with a trace id (1 = all,\n"
      "                  0 = off); spans land in the --trace-out timeline\n"
      "  --slow-op-us N  structured slow-op log: any request whose stage\n"
      "                  breakdown exceeds N microseconds logs to stderr\n"
      "                  and bumps hartd_slow_ops_total (0 = off)\n"
      "  --print-config  dump the resolved configuration and exit\n"
      "  --help          this text\n";
  return s;
}

std::string dump_config(const Config& cfg) {
  const Hartd::Options& o = cfg.service;
  std::string s;
  auto kv = [&s](const char* k, const std::string& v) {
    s += k;
    s += " = ";
    s += v;
    s += '\n';
  };
  auto num = [&kv](const char* k, uint64_t v) { kv(k, std::to_string(v)); };
  auto onoff = [&kv](const char* k, bool v) { kv(k, v ? "true" : "false"); };
  num("port", static_cast<uint64_t>(cfg.port));
  kv("port_file", cfg.port_file.empty() ? "(none)" : cfg.port_file);
  num("shards", o.shards);
  num("batch_size", o.batch_size);
  num("queue_capacity", o.queue_capacity);
  kv("arena_dir", o.arena_dir.empty() ? "(in-memory)" : o.arena_dir);
  num("arena_mb", o.arena_mb);
  kv("latency",
     std::to_string(o.latency.pm_write_ns) + "/" +
         std::to_string(o.latency.pm_read_ns) + " ns");
  onoff("defer_latency", o.defer_latency);
  kv("alloc_kind", alloc_kind_name(epalloc::resolve_alloc_kind(
                       o.hart.alloc.kind)));
  num("alloc_stripes", o.hart.alloc.stripes);  // 0 = auto (hw threads, <=8)
  onoff("alloc_batched_meta", o.hart.alloc.batched_meta);
  num("bloom_bits_per_key", o.bloom_bits_per_key);
  num("bloom_expected_keys", o.bloom_expected_keys);
  onoff("rwlock_reads", o.hart.rwlock_reads);
  onoff("fastpath_reads", o.fastpath_reads);
  onoff("check", o.check);
  onoff("follow", o.follow);
  std::string targets;
  for (const auto& t : o.replicate_to) {
    if (!targets.empty()) targets += ',';
    targets += t;
  }
  kv("replicate_to", targets.empty() ? "(none)" : targets);
  kv("ack_policy", repl::ack_policy_name(o.ack_policy));
  num("repl_log_batches", o.repl_log_batches);
  num("repl_window", o.repl_window);
  num("stats_dump_secs", static_cast<uint64_t>(cfg.stats_dump_secs));
  kv("trace_out", cfg.trace_out.empty() ? "(none)" : cfg.trace_out);
  num("trace_sample", o.trace_sample);
  num("slow_op_us", o.slow_op_us);
  return s;
}

}  // namespace hart::server
