// HARTscope service scrape: merge the process-wide obs registry (pm_*,
// ep_*, hart_* counters) with hartd's service-level totals, per-shard
// labeled counters and per-op latency histograms, and render the result
// as Prometheus text or JSON. Backs the kStats protocol op, hartd's
// --stats-dump loop and hartd_loadgen --stats-out (in-proc mode).
#pragma once

#include <string>
#include <vector>

#include "obs/export.h"

namespace hart::server {

class Hartd;

/// The kStats response value travels in a u16 val_len field; the rendered
/// text is truncated to this (whole lines are dropped, see truncation in
/// Hartd) so the frame stays well-formed.
inline constexpr size_t kMaxStatsPayload = 65000;

/// Gather every metric for one scrape: global registry counters plus
/// hartd_* service totals / per-shard series, and one HistogramView per
/// (shard, op) plus the per-shard fence histogram. `counters` comes back
/// sorted by name (Prometheus TYPE grouping relies on it).
void collect_stats(const Hartd& d, obs::Registry::Sample* counters,
                   std::vector<obs::HistogramView>* hists);

std::string stats_prometheus(const Hartd& d);
std::string stats_json(const Hartd& d);

}  // namespace hart::server
