// hart::Client — client library for hartd with a synchronous API and a
// pipelined asynchronous API, over either transport:
//
//   * in-process: Client(hartd) submits straight into the shard queues;
//   * TCP:        Client(host, port) speaks the proto.h framing; a reader
//                 thread matches responses to requests by id.
//
// Pipelining: send() returns immediately with a request id; wait(id)
// blocks for that response. Responses complete out of submission order
// across shards (per-shard batching), which is exactly what the id
// correlation absorbs. A Client is thread-safe; one connection is shared.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "server/hartd.h"
#include "server/proto.h"

namespace hart::server {

/// One server address for the TCP transport.
struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

/// Transparent reconnection for transient TCP errors: when the stream
/// dies, the next send() redials the endpoint list (rotating — so a
/// client configured with [primary, follower] lands on the promoted
/// follower after a failover) with bounded exponential backoff. Requests
/// in flight when the stream died still fail with kNetError: the client
/// cannot know whether the server acked them, so it never silently
/// retries a write.
struct ReconnectPolicy {
  /// Dial attempts per send() before giving up (kNetError). 0 disables
  /// reconnection (the single-endpoint ctor's default).
  size_t max_attempts = 0;
  uint32_t backoff_base_ms = 10;
  uint32_t backoff_max_ms = 1000;
};

class Client {
 public:
  /// In-process transport: submits into `local`'s shard queues.
  explicit Client(Hartd& local);
  /// TCP transport, single endpoint, no reconnection (a dead stream fails
  /// all requests with kNetError). Throws on connection failure.
  Client(const std::string& host, uint16_t port);
  /// TCP transport over an endpoint list with reconnection. The initial
  /// dial also honors the policy's attempts/backoff; throws when every
  /// endpoint stays unreachable.
  Client(std::vector<Endpoint> endpoints, ReconnectPolicy policy);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ---- synchronous API --------------------------------------------------
  Response put(std::string key, std::string value);
  Response get(std::string key);
  Response update(std::string key, std::string value);
  Response del(std::string key);
  Response ping();
  /// Scrape the server's HARTscope metrics into *out. `format`: "json" or
  /// "" / "prometheus" (text). kOk on success; kUnavailable when the
  /// transport or server could not answer (Index API v2 — no wire Status
  /// leaks through this call).
  common::Status stats(std::string* out, std::string format = {});
  /// Batched point lookups in one kMget round trip (dispatcher-served,
  /// never queued behind writes). `out->at(i)` / `found->at(i)` answer
  /// `keys[i]`; returns the hit count. At most kMaxBatchEntries keys;
  /// oversized or failed batches come back all-miss.
  size_t multi_get(const std::vector<std::string>& keys,
                   std::vector<std::string>* out, std::vector<bool>* found);
  /// Ordered scan: up to `limit` entries with key >= `start`, ascending,
  /// merged across shards. Returns the entry count (0 on failure or when
  /// `start` is not a valid key).
  size_t scan(std::string start, uint32_t limit,
              std::vector<std::pair<std::string, std::string>>* out);
  /// Ask the server to become primary (replication failover). kOk on
  /// success, with the node's applied replication positions (an encoded
  /// ReplPosition list) written to *positions when non-null; kUnavailable
  /// when the node refused or the transport failed.
  common::Status promote(std::string* positions = nullptr);

  // ---- pipelined API ----------------------------------------------------
  /// Fire a request without waiting; returns its id. On a dead transport
  /// the request completes immediately with kNetError (still waitable).
  uint64_t send(Request req);
  /// Block until the response for `id` arrives, then return it. Each id
  /// may be waited on once.
  Response wait(uint64_t id);
  /// Block until every outstanding request has completed.
  void wait_all();

  [[nodiscard]] size_t outstanding() const;
  [[nodiscard]] bool connected() const;

  /// Client-side trace sampling: stamp every Nth KV request (that is not
  /// already stamped) with a fresh trace id and record a "client" span
  /// covering send -> response completion. 1 = every request, 0 = off
  /// (default). Spans land in this process's obs::Tracer when enabled.
  void set_trace_sampling(uint64_t every_n);

 private:
  void reader_loop(int fd);
  void complete(uint64_t id, Response resp);
  /// Stamp a sampled request and remember its span start (under mu_).
  void trace_start(uint64_t id, Request* req) REQUIRES(mu_);
  /// Pop the span state for a completing id and record the "client" span.
  void trace_finish(uint64_t id) REQUIRES(mu_);
  /// Redial the endpoint list per the policy; true when a fresh stream is
  /// up. Serialized so concurrent senders share one repair.
  bool try_reconnect();
  void spawn_reader(int fd) REQUIRES(reconnect_mu_);

  Hartd* local_ = nullptr;  // in-process transport when non-null
  std::vector<Endpoint> endpoints_;
  ReconnectPolicy policy_;
  std::atomic<bool> closing_{false};

  common::Mutex reconnect_mu_;  // serializes redial + reader respawn
  size_t ep_index_ GUARDED_BY(reconnect_mu_) = 0;
  std::thread reader_;  // joined/respawned only under reconnect_mu_

  common::Mutex write_mu_;  // serializes TCP frame writes
  int fd_ GUARDED_BY(write_mu_) = -1;  // TCP transport when >= 0

  mutable common::Mutex mu_;
  common::CondVar cv_;
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  bool broken_ GUARDED_BY(mu_) = false;  // TCP stream died
  uint64_t trace_every_ GUARDED_BY(mu_) = 0;  // sample every Nth; 0 = off
  uint64_t trace_tick_ GUARDED_BY(mu_) = 0;
  uint64_t trace_base_ GUARDED_BY(mu_) = 0;  // per-client trace-id salt
  struct TraceStart {
    uint64_t trace_id = 0;
    uint64_t start_ns = 0;  // tracer-epoch span start
  };
  std::unordered_map<uint64_t, TraceStart> traced_ GUARDED_BY(mu_);
  /// Ids sent but not yet completed. A dying reader fails every pending
  /// id into done_ with kNetError, so waiters never strand across a
  /// reconnect (a fresh stream has no memory of the old one's requests).
  std::unordered_set<uint64_t> pending_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, Response> done_ GUARDED_BY(mu_);
};

}  // namespace hart::server

namespace hart {
using Client = server::Client;  // the library's public name
}
