// hart::Client — client library for hartd with a synchronous API and a
// pipelined asynchronous API, over either transport:
//
//   * in-process: Client(hartd) submits straight into the shard queues;
//   * TCP:        Client(host, port) speaks the proto.h framing; a reader
//                 thread matches responses to requests by id.
//
// Pipelining: send() returns immediately with a request id; wait(id)
// blocks for that response. Responses complete out of submission order
// across shards (per-shard batching), which is exactly what the id
// correlation absorbs. A Client is thread-safe; one connection is shared.
#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "server/hartd.h"
#include "server/proto.h"

namespace hart::server {

class Client {
 public:
  /// In-process transport: submits into `local`'s shard queues.
  explicit Client(Hartd& local);
  /// TCP transport. Throws on connection failure.
  Client(const std::string& host, uint16_t port);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ---- synchronous API --------------------------------------------------
  Response put(std::string key, std::string value);
  Response get(std::string key);
  Response update(std::string key, std::string value);
  Response del(std::string key);
  Response ping();
  /// Scrape the server's HARTscope metrics; the snapshot is in the
  /// response value. `format`: "json" or "" / "prometheus" (text).
  Response stats(std::string format = {});
  /// Batched point lookups in one kMget round trip (dispatcher-served,
  /// never queued behind writes). `out->at(i)` / `found->at(i)` answer
  /// `keys[i]`; returns the hit count. At most kMaxBatchEntries keys;
  /// oversized or failed batches come back all-miss.
  size_t multi_get(const std::vector<std::string>& keys,
                   std::vector<std::string>* out, std::vector<bool>* found);
  /// Ordered scan: up to `limit` entries with key >= `start`, ascending,
  /// merged across shards. Returns the entry count (0 on failure or when
  /// `start` is not a valid key).
  size_t scan(std::string start, uint32_t limit,
              std::vector<std::pair<std::string, std::string>>* out);

  // ---- pipelined API ----------------------------------------------------
  /// Fire a request without waiting; returns its id. On a dead transport
  /// the request completes immediately with kNetError (still waitable).
  uint64_t send(Request req);
  /// Block until the response for `id` arrives, then return it. Each id
  /// may be waited on once.
  Response wait(uint64_t id);
  /// Block until every outstanding request has completed.
  void wait_all();

  [[nodiscard]] size_t outstanding() const;
  [[nodiscard]] bool connected() const;

 private:
  void reader_loop();
  void complete(uint64_t id, Response resp);

  Hartd* local_ = nullptr;  // in-process transport when non-null
  int fd_ = -1;             // TCP transport when >= 0
  std::thread reader_;
  common::Mutex write_mu_;  // serializes TCP frame writes

  mutable common::Mutex mu_;
  common::CondVar cv_;
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  size_t outstanding_ GUARDED_BY(mu_) = 0;
  bool broken_ GUARDED_BY(mu_) = false;  // TCP stream died
  std::unordered_map<uint64_t, Response> done_ GUARDED_BY(mu_);
};

}  // namespace hart::server

namespace hart {
using Client = server::Client;  // the library's public name
}
