#include "server/stats.h"

#include <algorithm>

#include "server/hartd.h"

namespace hart::server {

namespace {

std::string shard_label(size_t i) {
  return "shard=\"" + std::to_string(i) + "\"";
}

}  // namespace

void collect_stats(const Hartd& d, obs::Registry::Sample* counters,
                   std::vector<obs::HistogramView>* hists) {
  *counters = obs::Registry::instance().snapshot();
  hists->clear();

  uint64_t ops = 0, write_acks = 0, batches = 0, epochs = 0, failed = 0,
           device_ns = 0;
  for (size_t i = 0; i < d.shard_count(); ++i) {
    const Shard& s = d.shard(i);
    const ShardStats& st = s.stats();
    const uint64_t s_ops = st.ops.load(std::memory_order_relaxed);
    const uint64_t s_acks = st.write_acks.load(std::memory_order_relaxed);
    const uint64_t s_batches = st.batches.load(std::memory_order_relaxed);
    const uint64_t s_epochs = st.epochs.load(std::memory_order_relaxed);
    const uint64_t s_failed = st.failed.load(std::memory_order_relaxed);
    const uint64_t s_dev = st.device_ns.load(std::memory_order_relaxed);
    ops += s_ops;
    write_acks += s_acks;
    batches += s_batches;
    epochs += s_epochs;
    failed += s_failed;
    device_ns += s_dev;
    const std::string lbl = shard_label(i);
    counters->emplace_back("hartd_shard_ops_total{" + lbl + "}", s_ops);
    counters->emplace_back("hartd_shard_write_acks_total{" + lbl + "}",
                           s_acks);
    counters->emplace_back("hartd_shard_batches_total{" + lbl + "}",
                           s_batches);
    counters->emplace_back("hartd_shard_epochs_total{" + lbl + "}", s_epochs);

    const ShardHistograms sh = s.histograms();
    for (size_t o = 0; o < ShardHistograms::kOps; ++o) {
      if (sh.op[o].count() == 0) continue;
      hists->push_back({"hartd_op_latency_ns",
                        lbl + ",op=\"" + op_hist_name(o) + "\"", sh.op[o]});
    }
    if (sh.fence.count() != 0)
      hists->push_back({"hartd_fence_latency_ns", lbl, sh.fence});
    // Stage-latency attribution (DESIGN.md §12). Always emitted — an idle
    // shard exposes well-defined zeros (empty-histogram percentiles are 0)
    // rather than disappearing from the scrape.
    hists->push_back({"hartd_stage_latency_ns",
                      lbl + ",stage=\"queue_wait\"", sh.queue_wait});
    hists->push_back({"hartd_stage_latency_ns",
                      lbl + ",stage=\"batch_residency\"", sh.batch_residency});
    hists->push_back({"hartd_stage_latency_ns",
                      lbl + ",stage=\"fence_wait\"", sh.fence_wait});
  }

  // Dispatcher-served reads (kGet fast path, kMget, kScan) never enter a
  // shard queue, so they are accounted at the service level and folded
  // into the ops total alongside the per-shard applied counts.
  const uint64_t fastpath = d.fastpath_reads();
  counters->emplace_back("hartd_fastpath_reads_total", fastpath);
  counters->emplace_back("hartd_ops_total", ops + fastpath);
  counters->emplace_back("hartd_write_acks_total", write_acks);
  counters->emplace_back("hartd_batches_total", batches);
  counters->emplace_back("hartd_epochs_total", epochs);
  counters->emplace_back("hartd_failed_total", failed);
  counters->emplace_back("hartd_device_ns_total", device_ns);
  counters->emplace_back("hartd_live_keys", d.total_size());
  counters->emplace_back("hartd_recovery_duration_ms", d.recovery_ms());
  counters->emplace_back("hartd_recovered_keys", d.recovered_keys());

  // Replication plane. Role is a numeric gauge (0 primary, 1 follower,
  // 2 promoting); the cumulative repl counters (batches shipped / applied
  // / confirmed, reconnects, evictions) already live in the registry
  // snapshot merged above.
  counters->emplace_back("hartd_repl_role",
                         static_cast<uint64_t>(d.role()));
  if (const repl::Replicator* r = d.replicator()) {
    counters->emplace_back("hartd_repl_followers", r->follower_count());
    counters->emplace_back("hartd_repl_connected_links",
                           r->connected_links());
    counters->emplace_back("hartd_repl_lag_batches", r->lag_batches());
    counters->emplace_back("hartd_repl_quorum_needed", r->quorum_needed());
    counters->emplace_back("hartd_repl_pending_quorum_acks",
                           r->pending_quorum_acks());
    counters->emplace_back("hartd_repl_log_occupancy_hwm",
                           r->log().occupancy_high_watermark());
    // Per-link health, plus worst-case aggregates under the same gauge
    // names the follower role emits — dashboards poll one name per role.
    uint64_t lag_seq = 0, lag_bytes = 0, confirm_age = 0;
    for (const repl::LinkHealth& lh : r->link_health()) {
      const std::string lbl = "link=\"" + std::to_string(lh.index) + "\"";
      counters->emplace_back("hartd_repl_link_lag_seq{" + lbl + "}",
                             lh.lag_seq);
      counters->emplace_back("hartd_repl_link_lag_bytes{" + lbl + "}",
                             lh.lag_bytes);
      counters->emplace_back(
          "hartd_repl_link_last_confirm_age_ms{" + lbl + "}",
          lh.last_confirm_age_ms);
      counters->emplace_back("hartd_repl_link_connected{" + lbl + "}",
                             lh.connected ? 1 : 0);
      counters->emplace_back("hartd_repl_link_synced{" + lbl + "}",
                             lh.synced ? 1 : 0);
      counters->emplace_back("hartd_repl_link_backoff_ms{" + lbl + "}",
                             lh.backoff_ms);
      lag_seq = std::max(lag_seq, lh.lag_seq);
      lag_bytes = std::max(lag_bytes, lh.lag_bytes);
      confirm_age = std::max(confirm_age, lh.last_confirm_age_ms);
    }
    counters->emplace_back("hartd_repl_lag_seq", lag_seq);
    counters->emplace_back("hartd_repl_lag_bytes", lag_bytes);
    counters->emplace_back("hartd_repl_last_confirm_age_ms", confirm_age);
    hists->push_back({"hartd_stage_latency_ns", "stage=\"quorum_wait\"",
                      r->quorum_wait_histogram()});
  }
  if (const repl::FollowerApplier* a = d.applier()) {
    for (const ReplPosition& p : a->positions()) {
      const std::string lbl =
          "stream=\"" + std::to_string(p.stream) + "\"";
      counters->emplace_back("hartd_repl_applied_seq{" + lbl + "}", p.seq);
      counters->emplace_back("hartd_repl_applied_epoch{" + lbl + "}",
                             p.epoch);
    }
    // Follower-side lag under the same gauge names the primary emits, so
    // repl_smoke can assert convergence-to-zero on either role. A promoted
    // node that also replicates onward reports the primary-side view.
    if (d.replicator() == nullptr) {
      const repl::FollowerApplier::Health h = a->health();
      counters->emplace_back("hartd_repl_lag_seq", h.backlog_batches);
      counters->emplace_back("hartd_repl_lag_bytes", h.backlog_bytes);
      counters->emplace_back("hartd_repl_last_confirm_age_ms",
                             h.last_apply_age_ms);
    }
  }

  // Prometheus TYPE lines are emitted when the base name changes, so
  // same-base series must be adjacent.
  std::sort(counters->begin(), counters->end());
  std::sort(hists->begin(), hists->end(),
            [](const obs::HistogramView& a, const obs::HistogramView& b) {
              return a.name != b.name ? a.name < b.name : a.labels < b.labels;
            });
}

std::string stats_prometheus(const Hartd& d) {
  obs::Registry::Sample counters;
  std::vector<obs::HistogramView> hists;
  collect_stats(d, &counters, &hists);
  return obs::prometheus_text(counters, hists);
}

std::string stats_json(const Hartd& d) {
  obs::Registry::Sample counters;
  std::vector<obs::HistogramView> hists;
  collect_stats(d, &counters, &hists);
  return obs::json_text(counters, hists);
}

}  // namespace hart::server
