#include "server/stats.h"

#include <algorithm>

#include "server/hartd.h"

namespace hart::server {

namespace {

std::string shard_label(size_t i) {
  return "shard=\"" + std::to_string(i) + "\"";
}

}  // namespace

void collect_stats(const Hartd& d, obs::Registry::Sample* counters,
                   std::vector<obs::HistogramView>* hists) {
  *counters = obs::Registry::instance().snapshot();
  hists->clear();

  uint64_t ops = 0, write_acks = 0, batches = 0, epochs = 0, failed = 0,
           device_ns = 0;
  for (size_t i = 0; i < d.shard_count(); ++i) {
    const Shard& s = d.shard(i);
    const ShardStats& st = s.stats();
    const uint64_t s_ops = st.ops.load(std::memory_order_relaxed);
    const uint64_t s_acks = st.write_acks.load(std::memory_order_relaxed);
    const uint64_t s_batches = st.batches.load(std::memory_order_relaxed);
    const uint64_t s_epochs = st.epochs.load(std::memory_order_relaxed);
    const uint64_t s_failed = st.failed.load(std::memory_order_relaxed);
    const uint64_t s_dev = st.device_ns.load(std::memory_order_relaxed);
    ops += s_ops;
    write_acks += s_acks;
    batches += s_batches;
    epochs += s_epochs;
    failed += s_failed;
    device_ns += s_dev;
    const std::string lbl = shard_label(i);
    counters->emplace_back("hartd_shard_ops_total{" + lbl + "}", s_ops);
    counters->emplace_back("hartd_shard_write_acks_total{" + lbl + "}",
                           s_acks);
    counters->emplace_back("hartd_shard_batches_total{" + lbl + "}",
                           s_batches);
    counters->emplace_back("hartd_shard_epochs_total{" + lbl + "}", s_epochs);

    const ShardHistograms sh = s.histograms();
    for (size_t o = 0; o < ShardHistograms::kOps; ++o) {
      if (sh.op[o].count() == 0) continue;
      hists->push_back({"hartd_op_latency_ns",
                        lbl + ",op=\"" + op_hist_name(o) + "\"", sh.op[o]});
    }
    if (sh.fence.count() != 0)
      hists->push_back({"hartd_fence_latency_ns", lbl, sh.fence});
  }

  // Dispatcher-served reads (kGet fast path, kMget, kScan) never enter a
  // shard queue, so they are accounted at the service level and folded
  // into the ops total alongside the per-shard applied counts.
  const uint64_t fastpath = d.fastpath_reads();
  counters->emplace_back("hartd_fastpath_reads_total", fastpath);
  counters->emplace_back("hartd_ops_total", ops + fastpath);
  counters->emplace_back("hartd_write_acks_total", write_acks);
  counters->emplace_back("hartd_batches_total", batches);
  counters->emplace_back("hartd_epochs_total", epochs);
  counters->emplace_back("hartd_failed_total", failed);
  counters->emplace_back("hartd_device_ns_total", device_ns);
  counters->emplace_back("hartd_live_keys", d.total_size());
  counters->emplace_back("hartd_recovery_duration_ms", d.recovery_ms());
  counters->emplace_back("hartd_recovered_keys", d.recovered_keys());

  // Replication plane. Role is a numeric gauge (0 primary, 1 follower,
  // 2 promoting); the cumulative repl counters (batches shipped / applied
  // / confirmed, reconnects, evictions) already live in the registry
  // snapshot merged above.
  counters->emplace_back("hartd_repl_role",
                         static_cast<uint64_t>(d.role()));
  if (const repl::Replicator* r = d.replicator()) {
    counters->emplace_back("hartd_repl_followers", r->follower_count());
    counters->emplace_back("hartd_repl_connected_links",
                           r->connected_links());
    counters->emplace_back("hartd_repl_lag_batches", r->lag_batches());
    counters->emplace_back("hartd_repl_quorum_needed", r->quorum_needed());
    counters->emplace_back("hartd_repl_pending_quorum_acks",
                           r->pending_quorum_acks());
  }
  if (const repl::FollowerApplier* a = d.applier()) {
    for (const ReplPosition& p : a->positions()) {
      const std::string lbl =
          "stream=\"" + std::to_string(p.stream) + "\"";
      counters->emplace_back("hartd_repl_applied_seq{" + lbl + "}", p.seq);
      counters->emplace_back("hartd_repl_applied_epoch{" + lbl + "}",
                             p.epoch);
    }
  }

  // Prometheus TYPE lines are emitted when the base name changes, so
  // same-base series must be adjacent.
  std::sort(counters->begin(), counters->end());
  std::sort(hists->begin(), hists->end(),
            [](const obs::HistogramView& a, const obs::HistogramView& b) {
              return a.name != b.name ? a.name < b.name : a.labels < b.labels;
            });
}

std::string stats_prometheus(const Hartd& d) {
  obs::Registry::Sample counters;
  std::vector<obs::HistogramView> hists;
  collect_stats(d, &counters, &hists);
  return obs::prometheus_text(counters, hists);
}

std::string stats_json(const Hartd& d) {
  obs::Registry::Sample counters;
  std::vector<obs::HistogramView> hists;
  collect_stats(d, &counters, &hists);
  return obs::json_text(counters, hists);
}

}  // namespace hart::server
