// TCP loopback listener for hartd: accepts connections on 127.0.0.1, reads
// length-prefixed request frames (proto.h), submits them to the service,
// and writes responses back as their shard acks complete (out of order
// across shards; clients correlate by request id).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "server/hartd.h"

namespace hart::server {

class TcpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = kernel-chosen ephemeral port, see
  /// port()) and starts the accept loop. Throws on bind failure.
  TcpServer(Hartd& db, uint16_t port);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  [[nodiscard]] uint16_t port() const { return port_; }

  /// Stop accepting, shut down every connection, join all threads. Safe to
  /// call before or after Hartd::shutdown; pending acks that arrive after
  /// a connection closed are dropped. Idempotent.
  void stop();

 private:
  // Shared with in-flight ack callbacks: a response writer takes write_mu
  // and checks `open` before using fd, so stop() can close the socket
  // without racing a late ack.
  struct Conn {
    int fd = -1;
    common::Mutex write_mu;
    bool open GUARDED_BY(write_mu) = true;
  };

  void accept_loop();
  void serve(const std::shared_ptr<Conn>& conn);
  static void send_response(const std::shared_ptr<Conn>& conn, uint64_t id,
                            const Response& resp);

  Hartd& db_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  common::Mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_ GUARDED_BY(conns_mu_);
  std::vector<std::thread> conn_threads_ GUARDED_BY(conns_mu_);
};

}  // namespace hart::server
