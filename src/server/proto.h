// hartd wire protocol — a small binary request/response format shared by
// the in-process transport and the TCP loopback listener.
//
// Framing: every message is `u32 body_len` followed by `body_len` bytes of
// body. All integers are host byte order (the protocol is loopback /
// same-host only; keys and values are raw bytes, NUL-safe).
//
//   request body : u64 id | u8 op | u8 key_len | u16 val_len | key | value
//   response body: u64 id | u8 status | u8 pad | u16 val_len | u64 epoch
//                  | value
//
// `id` is a client-chosen correlation token: the pipelined client sends
// many requests without waiting and matches responses by id (per-shard
// batching means responses can complete out of submission order across
// shards).
//
// `epoch` is the group-commit epoch that made the write durable (see
// Hart::flush_epoch); 0 for reads and unfenced responses.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace hart::server {

enum class OpCode : uint8_t {
  kPut = 1,     // insert-or-update
  kGet = 2,
  kUpdate = 3,  // update-only (miss -> kNotFound)
  kDelete = 4,
  kPing = 5,
  /// Scrape the server's HARTscope metrics. The request value selects the
  /// format ("json", anything else = Prometheus text); the response value
  /// carries the rendered snapshot. Answered directly by the dispatcher,
  /// never routed to a shard, so it does not perturb per-shard op counts.
  kStats = 6,
};

enum class Status : uint8_t {
  kOk = 0,            // applied; for kPut: inserted a fresh key
  kUpdated = 1,       // kPut hit an existing key and updated it in place
  kNotFound = 2,      // kGet / kUpdate / kDelete missed
  kBadRequest = 3,    // malformed frame or invalid key/value
  kShardFailed = 4,   // shard hit a (simulated) crash point; NOT acked
  kShuttingDown = 5,  // submitted after graceful shutdown began
  kNetError = 6,      // client-side only: transport failed before a reply
};

inline const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kUpdated: return "updated";
    case Status::kNotFound: return "not-found";
    case Status::kBadRequest: return "bad-request";
    case Status::kShardFailed: return "shard-failed";
    case Status::kShuttingDown: return "shutting-down";
    default: return "net-error";
  }
}

/// An acked write: the server persisted it before replying.
inline bool is_acked_write(Status s) {
  return s == Status::kOk || s == Status::kUpdated;
}

inline bool is_write(OpCode op) {
  return op == OpCode::kPut || op == OpCode::kUpdate || op == OpCode::kDelete;
}

struct Request {
  OpCode op = OpCode::kPing;
  std::string key;
  std::string value;
};

struct Response {
  Status status = Status::kOk;
  std::string value;
  uint64_t epoch = 0;
};

/// KV frames are tiny (key <= 24, value <= 64), but a kStats response
/// carries a rendered metrics snapshot whose size is bounded by the u16
/// val_len field (<= 65535 bytes, see Hartd's truncation). Anything bigger
/// than this cap is a corrupt or hostile stream and the connection drops.
inline constexpr uint32_t kMaxFrameBody = 128 * 1024;
inline constexpr size_t kRequestFixed = 8 + 1 + 1 + 2;
inline constexpr size_t kResponseFixed = 8 + 1 + 1 + 2 + 8;

namespace detail {
template <typename T>
void append_int(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}
template <typename T>
T read_int(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
}  // namespace detail

inline void encode_request(uint64_t id, const Request& r, std::string* out) {
  const uint32_t body = static_cast<uint32_t>(kRequestFixed + r.key.size() +
                                              r.value.size());
  detail::append_int(out, body);
  detail::append_int(out, id);
  detail::append_int(out, static_cast<uint8_t>(r.op));
  detail::append_int(out, static_cast<uint8_t>(r.key.size()));
  detail::append_int(out, static_cast<uint16_t>(r.value.size()));
  out->append(r.key);
  out->append(r.value);
}

inline bool decode_request(const char* p, size_t n, uint64_t* id,
                           Request* r) {
  if (n < kRequestFixed) return false;
  *id = detail::read_int<uint64_t>(p);
  const auto op = detail::read_int<uint8_t>(p + 8);
  const size_t klen = detail::read_int<uint8_t>(p + 9);
  const size_t vlen = detail::read_int<uint16_t>(p + 10);
  if (op < static_cast<uint8_t>(OpCode::kPut) ||
      op > static_cast<uint8_t>(OpCode::kStats) ||
      n != kRequestFixed + klen + vlen)
    return false;
  r->op = static_cast<OpCode>(op);
  r->key.assign(p + kRequestFixed, klen);
  r->value.assign(p + kRequestFixed + klen, vlen);
  return true;
}

inline void encode_response(uint64_t id, const Response& r,
                            std::string* out) {
  const uint32_t body =
      static_cast<uint32_t>(kResponseFixed + r.value.size());
  detail::append_int(out, body);
  detail::append_int(out, id);
  detail::append_int(out, static_cast<uint8_t>(r.status));
  detail::append_int(out, static_cast<uint8_t>(0));
  detail::append_int(out, static_cast<uint16_t>(r.value.size()));
  detail::append_int(out, r.epoch);
  out->append(r.value);
}

inline bool decode_response(const char* p, size_t n, uint64_t* id,
                            Response* r) {
  if (n < kResponseFixed) return false;
  *id = detail::read_int<uint64_t>(p);
  const auto st = detail::read_int<uint8_t>(p + 8);
  const size_t vlen = detail::read_int<uint16_t>(p + 10);
  if (st > static_cast<uint8_t>(Status::kNetError) ||
      n != kResponseFixed + vlen)
    return false;
  r->status = static_cast<Status>(st);
  r->epoch = detail::read_int<uint64_t>(p + 12);
  r->value.assign(p + kResponseFixed, vlen);
  return true;
}

/// Pull one complete frame body out of a receive buffer.
/// Returns +1 and moves the body into `*body` when a full frame is
/// buffered, 0 when more bytes are needed, -1 on a malformed stream.
inline int take_frame(std::string* buf, std::string* body) {
  if (buf->size() < 4) return 0;
  const uint32_t len = detail::read_int<uint32_t>(buf->data());
  if (len > kMaxFrameBody) return -1;
  if (buf->size() < 4 + static_cast<size_t>(len)) return 0;
  body->assign(buf->data() + 4, len);
  buf->erase(0, 4 + static_cast<size_t>(len));
  return 1;
}

/// Key -> shard partitioning hash (FNV-1a over the whole key; independent
/// of both the HashDir bucket hash and the hash-key prefix, so shard
/// balance does not correlate with partition balance).
inline uint64_t shard_hash(std::string_view key) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace hart::server
