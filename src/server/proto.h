// hartd wire protocol — a small binary request/response format shared by
// the in-process transport and the TCP loopback listener.
//
// Framing: every message is `u32 body_len` followed by `body_len` bytes of
// body. All integers are host byte order (the protocol is loopback /
// same-host only; keys and values are raw bytes, NUL-safe).
//
//   request body : u64 id | u8 op | u8 key_len | u16 val_len | key | value
//   response body: u64 id | u8 status | u8 pad | u16 val_len | u64 epoch
//                  | value
//
// Trace context (optional, backward compatible): a sampled request sets
// the high bit of the op byte (kTraceFlag) and inserts a u64 trace id
// between the fixed header and the key. Old clients never set the bit and
// old servers reject flagged ops as out of range — compatibility only has
// to hold in the old-client -> new-server direction, which is unchanged
// byte-for-byte. The same convention extends each kReplBatch entry, so a
// sampled write keeps its id across the replication hop.
//
// `id` is a client-chosen correlation token: the pipelined client sends
// many requests without waiting and matches responses by id (per-shard
// batching means responses can complete out of submission order across
// shards).
//
// `epoch` is the group-commit epoch that made the write durable (see
// Hart::flush_epoch); 0 for reads and unfenced responses.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace hart::server {

enum class OpCode : uint8_t {
  kPut = 1,     // insert-or-update
  kGet = 2,
  kUpdate = 3,  // update-only (miss -> kNotFound)
  kDelete = 4,
  kPing = 5,
  /// Scrape the server's HARTscope metrics. The request value selects the
  /// format ("json", anything else = Prometheus text); the response value
  /// carries the rendered snapshot. Answered directly by the dispatcher,
  /// never routed to a shard, so it does not perturb per-shard op counts.
  kStats = 6,
  /// Batched point lookups. The request key is empty; the value carries an
  /// encoded key list (encode_mget_keys). The response value carries one
  /// (found, value) entry per requested key, in request order
  /// (encode_mget_result). Answered on the dispatcher thread via HART's
  /// optimistic read path — the batch is grouped by shard and each group
  /// served with one Hart::multi_get, never queued behind writes.
  kMget = 7,
  /// Ordered range scan. The request key is the inclusive start key; the
  /// value is a u32 entry limit (encode_scan_limit). The response value
  /// carries up to `limit` (key, value) pairs in ascending key order,
  /// merged across shards (encode_scan_result). Dispatcher-served, like
  /// kMget.
  kScan = 8,
  /// REPL_BATCH — primary -> follower on a replication stream: one durable
  /// shard batch (encode_repl_batch in the request value: stream id, seq,
  /// epoch, entries). The follower applies every entry through its normal
  /// shard path and responds only after the entries' own group-commit
  /// fence completed, carrying its updated position for the stream
  /// (encode_repl_positions) — the response IS the fence confirmation the
  /// primary's quorum ack policy waits on. Idempotent: replaying a batch
  /// is harmless (PUT/UPDATE re-apply the same value, DELETE tolerates
  /// kNotFound), so reconnect resend needs no dedup.
  kReplBatch = 9,
  /// REPL_ACK — replication position query. Empty request; the response
  /// value reports the node's per-stream applied positions
  /// (encode_repl_positions): on a follower the last applied (seq, epoch)
  /// per primary shard stream, on a primary its batch-log tail. A
  /// (re)connecting replication link sends this first and resumes
  /// shipping from the follower's confirmed position.
  kReplAck = 10,
  /// PROMOTE — operator -> follower: finish applying every queued
  /// replication batch (tail replay through the shard queues), fence, and
  /// switch to the primary role; client writes are accepted from the
  /// response onward. Idempotent; on a node that is already primary it
  /// just reports kOk. The response value carries the final per-stream
  /// positions (encode_repl_positions).
  kPromote = 11,
};

enum class Status : uint8_t {
  kOk = 0,            // applied; for kPut: inserted a fresh key
  kUpdated = 1,       // kPut hit an existing key and updated it in place
  kNotFound = 2,      // kGet / kUpdate / kDelete missed
  kBadRequest = 3,    // malformed frame or invalid key/value
  kShardFailed = 4,   // shard hit a (simulated) crash point; NOT acked
  kShuttingDown = 5,  // submitted after graceful shutdown began
  kNetError = 6,      // client-side only: transport failed before a reply
  kNotPrimary = 7,    // write (or REPL_BATCH) sent to the wrong role
  /// Frame-level protocol violation (oversized or unparseable stream).
  /// The server sends this as a terminal response, then closes the
  /// connection — the stream position is no longer trustworthy.
  kProtocolError = 8,
};

inline const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kUpdated: return "updated";
    case Status::kNotFound: return "not-found";
    case Status::kBadRequest: return "bad-request";
    case Status::kShardFailed: return "shard-failed";
    case Status::kShuttingDown: return "shutting-down";
    case Status::kNetError: return "net-error";
    case Status::kNotPrimary: return "not-primary";
    default: return "protocol-error";
  }
}

/// An acked write: the server persisted it before replying.
inline bool is_acked_write(Status s) {
  return s == Status::kOk || s == Status::kUpdated;
}

/// Wire status -> Index API v2 status (the inverse of shard.h's
/// wire_status, for client-side APIs that report common::Status).
/// Server-/transport-side failures — crash points, shutdown, net errors,
/// wrong role, protocol violations — all collapse to kUnavailable: from
/// the caller's view the service could not answer, and the wire status
/// string (status_name) is the diagnostic channel.
inline common::Status common_status(Status s) {
  switch (s) {
    case Status::kOk: return common::Status::kOk;
    case Status::kUpdated: return common::Status::kUpdated;
    case Status::kNotFound: return common::Status::kNotFound;
    case Status::kBadRequest: return common::Status::kInvalidArgument;
    default: return common::Status::kUnavailable;
  }
}

inline bool is_write(OpCode op) {
  return op == OpCode::kPut || op == OpCode::kUpdate || op == OpCode::kDelete;
}

struct Request {
  OpCode op = OpCode::kPing;
  std::string key;
  std::string value;
  /// Nonzero = this request is trace-sampled: every stage it crosses
  /// records a span carrying this id (obs::TraceEvent::trace_id).
  uint64_t trace_id = 0;
};

struct Response {
  Status status = Status::kOk;
  std::string value;
  uint64_t epoch = 0;
};

/// KV frames are tiny (key <= 24, value <= 64), but a kStats response
/// carries a rendered metrics snapshot whose size is bounded by the u16
/// val_len field (<= 65535 bytes, see Hartd's truncation). Anything bigger
/// than this cap is a corrupt or hostile stream and the connection drops.
inline constexpr uint32_t kMaxFrameBody = 128 * 1024;
inline constexpr size_t kRequestFixed = 8 + 1 + 1 + 2;
inline constexpr size_t kResponseFixed = 8 + 1 + 1 + 2 + 8;

/// High bit of the op byte: a u64 trace id follows the fixed request (or
/// repl-entry) header. Ops stay < 0x80 so the flag never collides.
inline constexpr uint8_t kTraceFlag = 0x80;

namespace detail {
template <typename T>
void append_int(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}
template <typename T>
T read_int(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
}  // namespace detail

inline void encode_request(uint64_t id, const Request& r, std::string* out) {
  const size_t trace = r.trace_id != 0 ? 8 : 0;
  const uint32_t body = static_cast<uint32_t>(kRequestFixed + trace +
                                              r.key.size() + r.value.size());
  detail::append_int(out, body);
  detail::append_int(out, id);
  detail::append_int(out, static_cast<uint8_t>(
                              static_cast<uint8_t>(r.op) |
                              (trace != 0 ? kTraceFlag : 0)));
  detail::append_int(out, static_cast<uint8_t>(r.key.size()));
  detail::append_int(out, static_cast<uint16_t>(r.value.size()));
  if (trace != 0) detail::append_int(out, r.trace_id);
  out->append(r.key);
  out->append(r.value);
}

inline bool decode_request(const char* p, size_t n, uint64_t* id,
                           Request* r) {
  if (n < kRequestFixed) return false;
  *id = detail::read_int<uint64_t>(p);
  const auto raw_op = detail::read_int<uint8_t>(p + 8);
  const bool traced = (raw_op & kTraceFlag) != 0;
  const auto op = static_cast<uint8_t>(raw_op & ~kTraceFlag);
  const size_t klen = detail::read_int<uint8_t>(p + 9);
  const size_t vlen = detail::read_int<uint16_t>(p + 10);
  size_t off = kRequestFixed;
  r->trace_id = 0;
  if (traced) {
    if (n < off + 8) return false;
    r->trace_id = detail::read_int<uint64_t>(p + off);
    off += 8;
  }
  if (op < static_cast<uint8_t>(OpCode::kPut) ||
      op > static_cast<uint8_t>(OpCode::kPromote) ||
      n != off + klen + vlen)
    return false;
  r->op = static_cast<OpCode>(op);
  r->key.assign(p + off, klen);
  r->value.assign(p + off + klen, vlen);
  return true;
}

inline void encode_response(uint64_t id, const Response& r,
                            std::string* out) {
  const uint32_t body =
      static_cast<uint32_t>(kResponseFixed + r.value.size());
  detail::append_int(out, body);
  detail::append_int(out, id);
  detail::append_int(out, static_cast<uint8_t>(r.status));
  detail::append_int(out, static_cast<uint8_t>(0));
  detail::append_int(out, static_cast<uint16_t>(r.value.size()));
  detail::append_int(out, r.epoch);
  out->append(r.value);
}

inline bool decode_response(const char* p, size_t n, uint64_t* id,
                            Response* r) {
  if (n < kResponseFixed) return false;
  *id = detail::read_int<uint64_t>(p);
  const auto st = detail::read_int<uint8_t>(p + 8);
  const size_t vlen = detail::read_int<uint16_t>(p + 10);
  if (st > static_cast<uint8_t>(Status::kProtocolError) ||
      n != kResponseFixed + vlen)
    return false;
  r->status = static_cast<Status>(st);
  r->epoch = detail::read_int<uint64_t>(p + 12);
  r->value.assign(p + kResponseFixed, vlen);
  return true;
}

// ---- kMget / kScan payload codecs ---------------------------------------
//
// Batch payloads ride inside the ordinary request/response value field, so
// they are bounded by its u16 length prefix (65535 bytes). With keys <= 24
// and values <= 64 bytes the worst-case per-entry footprint is 91 bytes;
// kMaxBatchEntries keeps every legal batch comfortably inside the field.

inline constexpr size_t kMaxBatchEntries = 512;

/// kMget request value: u16 n | (u8 key_len, key bytes) * n.
inline bool encode_mget_keys(const std::vector<std::string>& keys,
                             std::string* out) {
  if (keys.size() > kMaxBatchEntries) return false;
  out->clear();
  detail::append_int(out, static_cast<uint16_t>(keys.size()));
  for (const std::string& k : keys) {
    if (k.size() > 255) return false;
    detail::append_int(out, static_cast<uint8_t>(k.size()));
    out->append(k);
  }
  return true;
}

inline bool decode_mget_keys(std::string_view payload,
                             std::vector<std::string>* keys) {
  keys->clear();
  if (payload.size() < 2) return false;
  const size_t n = detail::read_int<uint16_t>(payload.data());
  if (n > kMaxBatchEntries) return false;
  size_t off = 2;
  keys->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (off + 1 > payload.size()) return false;
    const size_t klen = detail::read_int<uint8_t>(payload.data() + off);
    off += 1;
    if (off + klen > payload.size()) return false;
    keys->emplace_back(payload.substr(off, klen));
    off += klen;
  }
  return off == payload.size();
}

/// kMget response value: u16 n | (u8 found, u16 val_len, value bytes) * n,
/// entry i answering request key i.
inline bool encode_mget_result(const std::vector<std::string>& values,
                               const std::vector<bool>& found,
                               std::string* out) {
  if (values.size() != found.size() || values.size() > kMaxBatchEntries)
    return false;
  out->clear();
  detail::append_int(out, static_cast<uint16_t>(values.size()));
  for (size_t i = 0; i < values.size(); ++i) {
    detail::append_int(out, static_cast<uint8_t>(found[i] ? 1 : 0));
    detail::append_int(out, static_cast<uint16_t>(values[i].size()));
    out->append(values[i]);
  }
  return true;
}

inline bool decode_mget_result(std::string_view payload,
                               std::vector<std::string>* values,
                               std::vector<bool>* found) {
  values->clear();
  found->clear();
  if (payload.size() < 2) return false;
  const size_t n = detail::read_int<uint16_t>(payload.data());
  if (n > kMaxBatchEntries) return false;
  size_t off = 2;
  values->reserve(n);
  found->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (off + 3 > payload.size()) return false;
    const bool hit = detail::read_int<uint8_t>(payload.data() + off) != 0;
    const size_t vlen = detail::read_int<uint16_t>(payload.data() + off + 1);
    off += 3;
    if (off + vlen > payload.size()) return false;
    found->push_back(hit);
    values->emplace_back(payload.substr(off, vlen));
    off += vlen;
  }
  return off == payload.size();
}

/// kScan request value: u32 entry limit (clamped server-side to
/// kMaxBatchEntries).
inline void encode_scan_limit(uint32_t limit, std::string* out) {
  out->clear();
  detail::append_int(out, limit);
}

inline bool decode_scan_limit(std::string_view payload, uint32_t* limit) {
  if (payload.size() != 4) return false;
  *limit = detail::read_int<uint32_t>(payload.data());
  return true;
}

/// kScan response value: u16 n | (u8 key_len, key, u16 val_len, value) * n
/// in ascending key order.
inline bool encode_scan_result(
    const std::vector<std::pair<std::string, std::string>>& entries,
    std::string* out) {
  if (entries.size() > kMaxBatchEntries) return false;
  out->clear();
  detail::append_int(out, static_cast<uint16_t>(entries.size()));
  for (const auto& [k, v] : entries) {
    if (k.size() > 255) return false;
    detail::append_int(out, static_cast<uint8_t>(k.size()));
    out->append(k);
    detail::append_int(out, static_cast<uint16_t>(v.size()));
    out->append(v);
  }
  return true;
}

inline bool decode_scan_result(
    std::string_view payload,
    std::vector<std::pair<std::string, std::string>>* entries) {
  entries->clear();
  if (payload.size() < 2) return false;
  const size_t n = detail::read_int<uint16_t>(payload.data());
  if (n > kMaxBatchEntries) return false;
  size_t off = 2;
  entries->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (off + 1 > payload.size()) return false;
    const size_t klen = detail::read_int<uint8_t>(payload.data() + off);
    off += 1;
    if (off + klen + 2 > payload.size()) return false;
    std::string key(payload.substr(off, klen));
    off += klen;
    const size_t vlen = detail::read_int<uint16_t>(payload.data() + off);
    off += 2;
    if (off + vlen > payload.size()) return false;
    entries->emplace_back(std::move(key),
                          std::string(payload.substr(off, vlen)));
    off += vlen;
  }
  return off == payload.size();
}

// ---- kReplBatch / kReplAck payload codecs -------------------------------
//
// Replication payloads ride in the ordinary request/response value field
// (u16-bounded, 65535 bytes). A shard batch that would not fit is split by
// the replicator into several wire batches sharing one epoch — each gets
// its own seq, and a follower confirming seq S has, by stream ordering,
// applied every seq <= S.

/// One replicated write, in shard apply order. A nonzero `trace_id`
/// travels with the entry (kTraceFlag on the entry op byte + appended
/// u64) so the follower's apply span joins the originating request's
/// trace.
struct ReplEntry {
  OpCode op = OpCode::kPut;
  std::string key;
  std::string value;
  uint64_t trace_id = 0;
};

/// A node's applied position on one replication stream (= one primary
/// shard). `seq` is the last wire batch applied, `epoch` the group-commit
/// epoch that made it durable on the reporting node.
struct ReplPosition {
  uint32_t stream = 0;
  uint64_t seq = 0;
  uint64_t epoch = 0;
};

inline constexpr size_t kReplBatchFixed = 4 + 8 + 8 + 2;
inline constexpr size_t kReplEntryFixed = 1 + 1 + 2;

/// Wire footprint of one entry inside a kReplBatch payload.
inline size_t repl_entry_wire_size(const ReplEntry& e) {
  return kReplEntryFixed + (e.trace_id != 0 ? 8 : 0) + e.key.size() +
         e.value.size();
}

/// kReplBatch request value:
///   u32 stream | u64 seq | u64 epoch | u16 n
///   | n * (u8 op, u8 key_len, u16 val_len, key, value)
/// Fails (false) when the batch would overflow the u16 value field or an
/// entry is unencodable — the caller must split first.
inline bool encode_repl_batch(uint32_t stream, uint64_t seq, uint64_t epoch,
                              const std::vector<ReplEntry>& entries,
                              std::string* out) {
  if (entries.size() > kMaxBatchEntries) return false;
  size_t need = kReplBatchFixed;
  for (const ReplEntry& e : entries) {
    if (e.key.size() > 255 || e.value.size() > 65535 || !is_write(e.op))
      return false;
    need += repl_entry_wire_size(e);
  }
  if (need > 65535) return false;
  out->clear();
  out->reserve(need);
  detail::append_int(out, stream);
  detail::append_int(out, seq);
  detail::append_int(out, epoch);
  detail::append_int(out, static_cast<uint16_t>(entries.size()));
  for (const ReplEntry& e : entries) {
    detail::append_int(out, static_cast<uint8_t>(
                                static_cast<uint8_t>(e.op) |
                                (e.trace_id != 0 ? kTraceFlag : 0)));
    detail::append_int(out, static_cast<uint8_t>(e.key.size()));
    detail::append_int(out, static_cast<uint16_t>(e.value.size()));
    if (e.trace_id != 0) detail::append_int(out, e.trace_id);
    out->append(e.key);
    out->append(e.value);
  }
  return true;
}

inline bool decode_repl_batch(std::string_view payload, uint32_t* stream,
                              uint64_t* seq, uint64_t* epoch,
                              std::vector<ReplEntry>* entries) {
  entries->clear();
  if (payload.size() < kReplBatchFixed) return false;
  const char* p = payload.data();
  *stream = detail::read_int<uint32_t>(p);
  *seq = detail::read_int<uint64_t>(p + 4);
  *epoch = detail::read_int<uint64_t>(p + 12);
  const size_t n = detail::read_int<uint16_t>(p + 20);
  if (n > kMaxBatchEntries) return false;
  size_t off = kReplBatchFixed;
  entries->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (off + kReplEntryFixed > payload.size()) return false;
    const auto raw_op = detail::read_int<uint8_t>(p + off);
    const bool traced = (raw_op & kTraceFlag) != 0;
    const auto op = static_cast<uint8_t>(raw_op & ~kTraceFlag);
    const size_t klen = detail::read_int<uint8_t>(p + off + 1);
    const size_t vlen = detail::read_int<uint16_t>(p + off + 2);
    off += kReplEntryFixed;
    if (!is_write(static_cast<OpCode>(op))) return false;
    ReplEntry e;
    if (traced) {
      if (off + 8 > payload.size()) return false;
      e.trace_id = detail::read_int<uint64_t>(p + off);
      off += 8;
    }
    if (off + klen + vlen > payload.size()) return false;
    e.op = static_cast<OpCode>(op);
    e.key.assign(p + off, klen);
    e.value.assign(p + off + klen, vlen);
    entries->push_back(std::move(e));
    off += klen + vlen;
  }
  return off == payload.size();
}

/// Position report (kReplBatch / kReplAck / kPromote response value):
///   u16 n | n * (u32 stream, u64 seq, u64 epoch)
inline bool encode_repl_positions(const std::vector<ReplPosition>& pos,
                                  std::string* out) {
  if (pos.size() > kMaxBatchEntries) return false;
  out->clear();
  detail::append_int(out, static_cast<uint16_t>(pos.size()));
  for (const ReplPosition& p : pos) {
    detail::append_int(out, p.stream);
    detail::append_int(out, p.seq);
    detail::append_int(out, p.epoch);
  }
  return true;
}

inline bool decode_repl_positions(std::string_view payload,
                                  std::vector<ReplPosition>* pos) {
  pos->clear();
  if (payload.size() < 2) return false;
  const size_t n = detail::read_int<uint16_t>(payload.data());
  if (n > kMaxBatchEntries) return false;
  if (payload.size() != 2 + n * 20) return false;
  pos->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const char* p = payload.data() + 2 + i * 20;
    ReplPosition r;
    r.stream = detail::read_int<uint32_t>(p);
    r.seq = detail::read_int<uint64_t>(p + 4);
    r.epoch = detail::read_int<uint64_t>(p + 12);
    pos->push_back(r);
  }
  return true;
}

/// Pull one complete frame body out of a receive buffer.
/// Returns +1 and moves the body into `*body` when a full frame is
/// buffered, 0 when more bytes are needed, -1 on a malformed stream.
inline int take_frame(std::string* buf, std::string* body) {
  if (buf->size() < 4) return 0;
  const uint32_t len = detail::read_int<uint32_t>(buf->data());
  if (len > kMaxFrameBody) return -1;
  if (buf->size() < 4 + static_cast<size_t>(len)) return 0;
  body->assign(buf->data() + 4, len);
  buf->erase(0, 4 + static_cast<size_t>(len));
  return 1;
}

/// Key -> shard partitioning hash (FNV-1a over the whole key; independent
/// of both the HashDir bucket hash and the hash-key prefix, so shard
/// balance does not correlate with partition balance).
inline uint64_t shard_hash(std::string_view key) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace hart::server
