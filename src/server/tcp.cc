#include "server/tcp.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/counters.h"

namespace hart::server {

namespace {
/// write() the whole buffer; MSG_NOSIGNAL so a dead peer yields EPIPE, not
/// SIGPIPE. Returns false on any error (the connection is then abandoned).
bool send_all(int fd, const char* p, size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w <= 0) return false;
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}
}  // namespace

TcpServer::TcpServer(Hartd& db, uint16_t port) : db_(db) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("cannot bind/listen on 127.0.0.1:" +
                             std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;  // transient (EINTR, aborted handshake)
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    common::MutexLock lk(conns_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { serve(conn); });
  }
}

void TcpServer::send_response(const std::shared_ptr<Conn>& conn, uint64_t id,
                              const Response& resp) {
  std::string frame;
  encode_response(id, resp, &frame);
  common::MutexLock lk(conn->write_mu);
  if (!conn->open) return;  // connection already torn down: drop the ack
  if (!send_all(conn->fd, frame.data(), frame.size())) {
    // Peer vanished; reads will notice too. Leave closing to stop()/serve.
  }
}

void TcpServer::serve(const std::shared_ptr<Conn>& conn) {
  std::string buf;
  std::string body;
  char chunk[4096];
  for (;;) {
    const ssize_t r = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (r <= 0) break;  // EOF, error, or shutdown() from stop()
    buf.append(chunk, static_cast<size_t>(r));
    for (;;) {
      const int got = take_frame(&buf, &body);
      if (got < 0) {
        // Oversized or corrupt length prefix: the stream can't be
        // re-synchronized, so the connection must drop — but tell the
        // peer why first (id 0: the offending frame's id is unknowable).
        obs::Registry::instance()
            .counter("hartd_proto_errors_total")
            .inc();
        send_response(conn, 0, Response{Status::kProtocolError, {}, 0});
        // Actively hang up so the peer sees EOF right away; the fd itself
        // is closed (under write_mu) by stop() like every other conn.
        ::shutdown(conn->fd, SHUT_RDWR);
        return;
      }
      if (got == 0) break;
      uint64_t id = 0;
      Request req;
      if (!decode_request(body.data(), body.size(), &id, &req)) {
        // Framing was intact, so the stream stays usable: answer this
        // frame with a protocol error and keep serving. Recover the id
        // when enough of the header arrived to carry one.
        if (id == 0 && body.size() >= sizeof(uint64_t))
          std::memcpy(&id, body.data(), sizeof(uint64_t));
        obs::Registry::instance()
            .counter("hartd_proto_errors_total")
            .inc();
        send_response(conn, id, Response{Status::kProtocolError, {}, 0});
        continue;
      }
      db_.submit(std::move(req), [conn, id](Response resp) {
        send_response(conn, id, resp);
      });
    }
  }
}

void TcpServer::stop() {
  if (stopping_.exchange(true)) return;
  // Wake the accept loop, then join it so no new connections appear.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);

  // Kick every reader out of recv(), join the connection threads, and only
  // then close the fds — under write_mu, so a late ack can never write to
  // a closed (possibly reused) descriptor.
  std::vector<std::shared_ptr<Conn>> conns;
  std::vector<std::thread> threads;
  {
    common::MutexLock lk(conns_mu_);
    conns.swap(conns_);
    threads.swap(conn_threads_);
  }
  for (auto& c : conns) ::shutdown(c->fd, SHUT_RDWR);
  for (auto& t : threads)
    if (t.joinable()) t.join();
  for (auto& c : conns) {
    common::MutexLock lk(c->write_mu);
    c->open = false;
    ::close(c->fd);
  }
}

}  // namespace hart::server
