// hartd — the sharded concurrent KV service. Fronts N independent HART
// shards (each with its own arena + EPallocator; keys partitioned by an
// FNV hash of the whole key) behind per-shard MPSC queues with group-
// persist batching. With `arena_dir` set, shards are file-backed and a
// restart recovers every shard (in parallel) with zero acked-write loss.
// See DESIGN.md §5.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "repl/applier.h"
#include "repl/promotion.h"
#include "repl/replicator.h"
#include "server/shard.h"

namespace hart::server {

class Hartd {
 public:
  struct Options {
    size_t shards = 4;
    size_t batch_size = 32;
    size_t queue_capacity = 4096;
    /// Per-shard arena size in MiB; 0 resolves from HART_ARENA_MB.
    size_t arena_mb = 0;
    pmem::LatencyConfig latency = pmem::LatencyConfig::off();
    /// Bank injected PM latency and pay it once per batch with a sleep in
    /// the shard worker (Arena::Options::defer_latency) instead of
    /// busy-waiting inside each persist. Default on: shards' device stalls
    /// then overlap even when workers share cores — the behavior of
    /// independent PM devices. Turn off to keep the figure benches'
    /// spin-per-persist device model.
    bool defer_latency = true;
    bool check = false;   // PMCheck on every shard arena (tests)
    bool shadow = false;  // crash simulation (tests)
    /// Directory for file-backed shard arenas ("<dir>/shard-<i>.arena").
    /// A relative path resolves under $HART_ARENA_DIR (Arena rules).
    /// Empty: anonymous arenas, no restart capability.
    std::string arena_dir;
    /// Serve kGet on the submitting (dispatcher) thread through HART's
    /// optimistic lock-free read path instead of queueing it behind the
    /// shard's writes. Automatically disabled when `hart.rwlock_reads` is
    /// set — the ablation keeps the original queued-read behavior. kMget
    /// and kScan are always dispatcher-served (they span shards).
    bool fastpath_reads = true;
    /// Start as a replication follower: client writes are rejected with
    /// kNotPrimary, REPL_BATCH streams apply through the shard path, and
    /// reads serve stale-tolerant from the lock-free read path. A PROMOTE
    /// request flips the node to primary (DESIGN.md §9).
    bool follow = false;
    /// Followers to replicate to, as "host:port". Non-empty makes this
    /// primary ship every shard's durable batch over dedicated
    /// replication streams.
    std::vector<std::string> replicate_to;
    /// kLocal: ack writes after the local fence. kQuorum: defer write
    /// acks until a majority of the replication group confirmed.
    repl::AckPolicy ack_policy = repl::AckPolicy::kLocal;
    /// Per-stream replication log retention, in wire batches.
    size_t repl_log_batches = 4096;
    /// Max unconfirmed wire batches in flight per follower link.
    size_t repl_window = 64;
    /// Per-shard counting Bloom filter consulted by the dispatcher before
    /// a GET/MGET touches the shard (short-circuits definitive misses;
    /// rebuilt from the recovered keys on restart). 0 = off; 10 is a
    /// reasonable on value (~0.8% false positives).
    size_t bloom_bits_per_key = 0;
    /// Per-shard key capacity the filter is sized for.
    size_t bloom_expected_keys = size_t{1} << 20;
    /// Structured slow-op log: any request whose queue->ack-ready time (or
    /// quorum wait) exceeds this many µs logs its stage breakdown to
    /// stderr and bumps hartd_slow_ops_total. 0 = disabled.
    uint64_t slow_op_us = 0;
    /// Dispatcher-side trace sampling: stamp every Nth KV request that
    /// arrives unsampled with a fresh trace id (1 = every request). 0 =
    /// off; client-stamped ids are always honored regardless.
    uint64_t trace_sample = 0;
    /// Engine options for every shard's Hart. The service defaults the
    /// allocator to batched chunk-header persists (alloc.batched_meta):
    /// write acks already wait for the shard's flush_epoch() fence, which
    /// is exactly where Allocator::flush_metadata() runs, so batching is
    /// ack-truthful here — unlike for a bare Hart embedder, whose ops must
    /// be individually durable on return. --eager-meta restores the
    /// per-op persists as an ablation.
    core::Hart::Options hart = [] {
      core::Hart::Options h;
      h.alloc.batched_meta = true;
      return h;
    }();
  };

  /// Opens (or recovers) all shards; shard recovery runs in parallel, one
  /// thread per shard. Throws on any shard failure.
  explicit Hartd(const Options& opts);
  ~Hartd();
  Hartd(const Hartd&) = delete;
  Hartd& operator=(const Hartd&) = delete;

  [[nodiscard]] size_t shard_of(std::string_view key) const {
    return static_cast<size_t>(shard_hash(key) % shards_.size());
  }

  /// Route to the key's shard. The ack fires exactly once — immediately
  /// with kShuttingDown when the service is already draining.
  /// Returns false in that case.
  bool submit(Request req, Shard::Ack ack);

  /// Synchronous convenience wrapper around submit().
  Response execute(Request req);

  /// Graceful shutdown: stop accepting, drain every shard queue (all
  /// pending acks fire), quiesce every Hart. Idempotent.
  void shutdown();

  [[nodiscard]] size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Shard& shard(size_t i) { return *shards_[i]; }
  [[nodiscard]] const Shard& shard(size_t i) const { return *shards_[i]; }
  /// True when every file-backed shard re-opened an existing arena.
  [[nodiscard]] bool reopened() const { return reopened_; }
  /// Total live keys across shards.
  [[nodiscard]] size_t total_size() const;
  /// Wall-clock time the constructor spent opening/recovering shards.
  [[nodiscard]] uint64_t recovery_ms() const { return recovery_ms_; }
  /// Keys recovered at construction (0 when arenas were fresh).
  [[nodiscard]] uint64_t recovered_keys() const { return recovered_keys_; }
  /// Read requests (kGet/kMget/kScan) answered on the dispatcher thread
  /// without entering a shard queue.
  [[nodiscard]] uint64_t fastpath_reads() const {
    return fastpath_reads_.load(std::memory_order_relaxed);
  }
  /// Current replication role (kPrimary for an unreplicated node).
  [[nodiscard]] repl::Role role() const { return promo_.role(); }
  /// Non-null when this node ships batches to followers.
  [[nodiscard]] const repl::Replicator* replicator() const {
    return repl_.get();
  }
  /// Non-null when this node started as a follower (kept after promotion
  /// so applied positions stay queryable).
  [[nodiscard]] const repl::FollowerApplier* applier() const {
    return applier_.get();
  }

 private:
  Response serve_get(const Request& req);
  Response serve_mget(const Request& req);
  Response serve_scan(const Request& req);
  /// Positions payload for kReplAck/kPromote responses.
  [[nodiscard]] std::vector<ReplPosition> repl_positions() const;
  /// Tail replay for promotion: a ping through every shard queue fences
  /// everything already queued (including replicated writes).
  void drain_shard_queues();

  Options opts_;
  repl::PromotionMachine promo_;
  // Constructed before (destroyed after) the shards whose batch_sink
  // points at it; Hartd::shutdown() orders the teardown explicitly.
  std::unique_ptr<repl::Replicator> repl_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<repl::FollowerApplier> applier_;
  std::atomic<bool> down_{false};
  std::atomic<uint64_t> fastpath_reads_{0};
  std::atomic<uint64_t> trace_seq_{0};  // dispatcher sampling tick
  uint64_t trace_base_ = 0;  // per-process trace-id salt
  bool fastpath_gets_ = true;  // opts_.fastpath_reads && !rwlock_reads
  bool reopened_ = false;
  uint64_t recovery_ms_ = 0;
  uint64_t recovered_keys_ = 0;
};

}  // namespace hart::server
