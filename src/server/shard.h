// One hartd shard: a private pmem::Arena + Hart, an MPSC submission queue
// and a worker thread that drains requests in batches and group-commits
// persists — one Hart::flush_epoch() fence per batch that performed a
// write, with every request in the batch acked only after that epoch's
// persistent() completed. See DESIGN.md §5.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "common/annotations.h"
#include "common/bloom.h"
#include "common/histogram.h"
#include "hart/hart.h"
#include "pmem/arena.h"
#include "server/proto.h"
#include "server/queue.h"

namespace hart::server {

struct ShardStats {
  std::atomic<uint64_t> ops{0};         // requests applied (any status)
  std::atomic<uint64_t> write_acks{0};  // durable writes acked
  std::atomic<uint64_t> batches{0};     // batches drained
  std::atomic<uint64_t> epochs{0};      // group-commit fences issued
  std::atomic<uint64_t> failed{0};      // requests refused after a crash point
  std::atomic<uint64_t> device_ns{0};   // deferred PM latency paid per batch
};

/// HARTscope: per-shard apply-time latency, split by operation, plus the
/// group-commit fence. Indices follow op_hist_index().
///
/// Stage attribution (HARTscope v2): every queued op additionally lands in
/// the per-shard stage histograms —
///   queue_wait       submit() -> worker dequeue (MPSC queue residency)
///   batch_residency  dequeue -> ack-ready (apply + fence + device pay,
///                    shared by every op of the batch)
///   fence_wait       apply end -> post-fence for fenced writes only (how
///                    long a write waited on the amortized epoch fence)
/// The fourth stage, repl-wait-for-quorum, is owned by repl::Replicator
/// (the parking lot lives there). All are well-defined zeros when empty.
struct ShardHistograms {
  static constexpr size_t kOps = 4;  // insert / get / update / delete
  std::array<common::LatencyHistogram, kOps> op;
  common::LatencyHistogram fence;
  common::LatencyHistogram queue_wait;
  common::LatencyHistogram batch_residency;
  common::LatencyHistogram fence_wait;
};

/// Histogram slot for a KV op; SIZE_MAX for kPing/kStats (not timed).
inline size_t op_hist_index(OpCode op) {
  switch (op) {
    case OpCode::kPut: return 0;
    case OpCode::kGet: return 1;
    case OpCode::kUpdate: return 2;
    case OpCode::kDelete: return 3;
    default: return SIZE_MAX;
  }
}

inline const char* op_hist_name(size_t idx) {
  static constexpr const char* kNames[ShardHistograms::kOps] = {
      "insert", "get", "update", "delete"};
  return kNames[idx];
}

/// Index API v2 -> wire status. kInserted is only produced by insert and
/// keeps the wire meaning of kOk for kPut (fresh key); kInvalidArgument
/// maps to kBadRequest — the index rejected the key/value before touching
/// anything, so the server keeps serving.
inline Status wire_status(common::Status s) {
  switch (s.code()) {
    case common::Status::kOk:
    case common::Status::kInserted:
      return Status::kOk;
    case common::Status::kUpdated:
      return Status::kUpdated;
    case common::Status::kNotFound:
      return Status::kNotFound;
    default:
      return Status::kBadRequest;
  }
}

/// A batch's durable writes, handed to the replication sink right after the
/// batch's group-commit fence completed on the worker thread: the entries
/// in apply order, the fence epoch, and — when the shard runs with
/// deferred write acks (quorum ack policy) — the write acks the sink now
/// owns and must fire exactly once when the ack policy is satisfied.
/// Reads, refused requests and failed writes are always acked by the shard
/// itself and never appear here.
struct DurableBatch {
  uint64_t epoch = 0;
  std::vector<ReplEntry> entries;
  struct DeferredAck {
    std::function<void(Response)> ack;
    Response resp;
    uint64_t trace_id = 0;  // nonzero: record a quorum_ack span on release
  };
  std::vector<DeferredAck> deferred;
};

class Shard {
 public:
  /// Completion callback. Invoked exactly once per submitted request, from
  /// the shard worker (or from submit() itself when already shut down).
  using Ack = std::function<void(Response)>;

  /// Post-fence replication hook, called on the worker thread with every
  /// batch that durably applied at least one write.
  using BatchSink = std::function<void(size_t shard_index, DurableBatch&&)>;

  struct Options {
    size_t index = 0;
    pmem::Arena::Options arena;  // file_path already chosen by the caller
    core::Hart::Options hart;
    size_t batch_size = 32;
    size_t queue_capacity = 4096;
    /// When set, every fenced batch's writes are forwarded (see
    /// DurableBatch). With `defer_write_acks` the sink also takes over
    /// firing the batch's write acks — the quorum ack policy.
    BatchSink batch_sink;
    bool defer_write_acks = false;
    /// Counting Bloom filter in front of the Hart for dispatcher-side
    /// negative-lookup short-circuit (0 = off). DRAM cost is about
    /// expected_keys * bits_per_key / 2 bytes per shard.
    size_t bloom_bits_per_key = 0;
    /// Keys the filter is sized for; grown to the recovered key count when
    /// an existing arena holds more.
    size_t bloom_expected_keys = size_t{1} << 20;
    /// Structured slow-op log threshold: a request whose submit->ack-ready
    /// time exceeds this emits one stderr line with its full stage
    /// breakdown (and bumps hartd_slow_ops_total). 0 = disabled.
    uint64_t slow_op_us = 0;
  };

  /// Opens the arena (recovering an existing file-backed HART) and starts
  /// the worker.
  explicit Shard(const Options& opts);
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Enqueue a request. Returns false without invoking `ack` when the
  /// shard is shutting down (the caller acks kShuttingDown itself).
  bool submit(Request req, Ack ack);

  /// Graceful: close the queue, drain every pending batch (their acks all
  /// fire), join the worker, quiesce the Hart. Idempotent.
  void shutdown();

  [[nodiscard]] core::Hart& hart() { return *hart_; }
  [[nodiscard]] const core::Hart& hart() const { return *hart_; }
  [[nodiscard]] pmem::Arena& arena() { return *arena_; }
  [[nodiscard]] const pmem::Arena& arena() const { return *arena_; }
  [[nodiscard]] const ShardStats& stats() const { return stats_; }
  /// Copy of the per-op latency histograms (worker writes, scrapes read).
  [[nodiscard]] ShardHistograms histograms() const {
    common::MutexLock lk(hist_mu_);
    return hists_;
  }
  /// True once a simulated crash point fired in the worker; subsequent
  /// requests are refused with kShardFailed and never acked as durable.
  [[nodiscard]] bool failed() const {
    return failed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] size_t index() const { return opts_.index; }

  /// Dispatcher fast path: false means the key is definitively absent
  /// (the GET can be answered kNotFound without enqueueing; no false
  /// negatives — see common::CountingBloom). Always true with no filter.
  [[nodiscard]] bool bloom_may_contain(std::string_view key) const {
    return bloom_ == nullptr || bloom_->may_contain(key);
  }
  [[nodiscard]] bool has_bloom() const { return bloom_ != nullptr; }

 private:
  struct Pending {
    Request req;
    Ack ack;
    Response resp;
    uint64_t enq_ns = 0;       // stamped by submit(): queue-wait start
    uint64_t apply_end_ns = 0; // stamped by the worker after apply()
    bool fence = false;  // performed a durable write: ack after the epoch
  };

  void worker();
  void apply(Pending* p);

  Options opts_;
  std::unique_ptr<pmem::Arena> arena_;
  std::unique_ptr<core::Hart> hart_;
  // Built (and recovery-rebuilt) in the constructor before worker_ starts;
  // mutated only by the worker (apply), probed lock-free by dispatchers.
  std::unique_ptr<common::CountingBloom> bloom_;
  MpscQueue<Pending> queue_;
  std::atomic<bool> failed_{false};
  std::atomic<bool> down_{false};
  ShardStats stats_;
  mutable common::Mutex hist_mu_;  // worker records, scrapes copy
  ShardHistograms hists_ GUARDED_BY(hist_mu_);
  std::thread worker_;  // last: started after everything above is live
};

}  // namespace hart::server
