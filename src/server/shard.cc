#include "server/shard.h"

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "obs/trace.h"

namespace hart::server {

namespace {
inline uint64_t mono_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

obs::Counter& slow_ops_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("hartd_slow_ops_total");
  return c;
}

/// Backdated sampled-trace span: the stage just ended and took `dur_ns`,
/// so its start in the tracer's time domain is now - dur.
inline void trace_stage(const char* name, uint64_t dur_ns, uint32_t shard,
                        uint64_t trace_id) {
  obs::Tracer& tr = obs::Tracer::instance();
  if (!tr.enabled()) return;
  const uint64_t now = tr.now_ns();
  tr.record(name, obs::TraceKind::kOp, now > dur_ns ? now - dur_ns : 0,
            dur_ns, shard, trace_id);
}

}  // namespace

Shard::Shard(const Options& opts)
    : opts_(opts),
      arena_(std::make_unique<pmem::Arena>(opts.arena)),
      hart_(std::make_unique<core::Hart>(*arena_, opts.hart)),
      queue_(opts.queue_capacity) {
  if (opts.bloom_bits_per_key > 0) {
    // Rebuild-on-recovery: size for the larger of the configured capacity
    // and what the (possibly recovered) Hart already holds, then seed the
    // filter from the live leaf list — all before the worker can serve.
    bloom_ = std::make_unique<common::CountingBloom>(
        std::max(opts.bloom_expected_keys, hart_->size()),
        opts.bloom_bits_per_key);
    hart_->for_each_key([this](std::string_view k) { bloom_->add(k); });
  }
  worker_ = std::thread([this] { worker(); });
}

Shard::~Shard() { shutdown(); }

bool Shard::submit(Request req, Ack ack) {
  Pending p;
  p.req = std::move(req);
  p.ack = std::move(ack);
  p.enq_ns = mono_ns();
  return queue_.push(std::move(p));
}

void Shard::shutdown() {
  if (down_.exchange(true)) return;
  queue_.close();
  if (worker_.joinable()) worker_.join();
  hart_->quiesce();
}

void Shard::apply(Pending* p) {
  Response& r = p->resp;
  switch (p->req.op) {
    case OpCode::kPut: {
      const common::Status s = hart_->insert(p->req.key, p->req.value);
      r.status = wire_status(s);
      p->fence =
          s.code() == common::Status::kInserted || s.code() == common::Status::kUpdated;
      // Bloom add only on a FRESH key: add/remove must stay balanced for
      // the counting filter's no-false-negative contract.
      if (bloom_ != nullptr && s.code() == common::Status::kInserted)
        bloom_->add(p->req.key);
      break;
    }
    case OpCode::kGet:
      r.status = wire_status(hart_->search(p->req.key, &r.value));
      break;
    case OpCode::kUpdate: {
      const common::Status s = hart_->update(p->req.key, p->req.value);
      r.status = wire_status(s);
      p->fence = s.code() == common::Status::kOk;
      break;
    }
    case OpCode::kDelete: {
      const common::Status s = hart_->remove(p->req.key);
      r.status = wire_status(s);
      p->fence = s.code() == common::Status::kOk;
      if (bloom_ != nullptr && s.code() == common::Status::kOk)
        bloom_->remove(p->req.key);
      break;
    }
    case OpCode::kPing:
      r.status = Status::kOk;
      break;
    case OpCode::kMget: {
      // Normally dispatcher-served (Hartd answers batch reads without
      // queueing); kept here so a directly-submitted batch still answers.
      std::vector<std::string> keys;
      std::vector<std::string> vals;
      std::vector<bool> found;
      if (!decode_mget_keys(p->req.value, &keys)) {
        r.status = Status::kBadRequest;
        break;
      }
      hart_->multi_get(keys, &vals, &found);
      r.status = encode_mget_result(vals, found, &r.value)
                     ? Status::kOk
                     : Status::kBadRequest;
      break;
    }
    case OpCode::kScan: {
      uint32_t limit = 0;
      if (!decode_scan_limit(p->req.value, &limit) ||
          !common::validate_key(p->req.key).ok()) {
        r.status = Status::kBadRequest;
        break;
      }
      std::vector<std::pair<std::string, std::string>> entries;
      hart_->range(p->req.key,
                   std::min<size_t>(limit, kMaxBatchEntries), &entries);
      r.status = encode_scan_result(entries, &r.value) ? Status::kOk
                                                       : Status::kBadRequest;
      break;
    }
    default:
      r.status = Status::kBadRequest;
      break;
  }
}

void Shard::worker() {
#ifdef __linux__
  // Deferred-latency batch stalls are tens of µs; the default 50 µs timer
  // slack would round every one of them up. 1 µs keeps the model honest.
  ::prctl(PR_SET_TIMERSLACK, 1000UL, 0, 0, 0);
#endif
  std::vector<Pending> batch;
  // Per-batch latency staging: one mutex acquisition per batch (not per
  // op) merges these into hists_ for scrapers.
  std::array<common::LatencyHistogram, ShardHistograms::kOps> local_op;
  common::LatencyHistogram local_fence;
  common::LatencyHistogram local_queue;
  common::LatencyHistogram local_resid;
  common::LatencyHistogram local_fwait;
  const uint32_t shard_arg = static_cast<uint32_t>(opts_.index);
  while (queue_.pop_batch(&batch, opts_.batch_size)) {
    obs::TraceSpan batch_span("shard_batch", obs::TraceKind::kBatch,
                              static_cast<uint32_t>(batch.size()));
    const uint64_t deq_ns = mono_ns();
    bool any_write = false;
    bool any_timed = false;
    for (auto& p : batch) {
      // Stage 1: MPSC queue residency (submit -> this dequeue). Recorded
      // for every op, sampled ops additionally emit a queue_wait span.
      const uint64_t qw = deq_ns > p.enq_ns ? deq_ns - p.enq_ns : 0;
      local_queue.record(qw);
      any_timed = true;
      if (p.req.trace_id != 0)
        trace_stage("queue_wait", qw, shard_arg, p.req.trace_id);
      if (failed_.load(std::memory_order_relaxed)) {
        p.resp.status = Status::kShardFailed;
        stats_.failed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const size_t hidx = op_hist_index(p.req.op);
      const uint64_t t0 = hidx == SIZE_MAX ? 0 : mono_ns();
      try {
        apply(&p);
        if (hidx != SIZE_MAX) {
          p.apply_end_ns = mono_ns();
          local_op[hidx].record(p.apply_end_ns - t0);
          if (p.req.trace_id != 0)
            trace_stage("shard_apply", p.apply_end_ns - t0, shard_arg,
                        p.req.trace_id);
        }
        any_write |= p.fence;
        stats_.ops.fetch_add(1, std::memory_order_relaxed);
      } catch (const pmem::CrashPoint&) {
        // A simulated crash point fired mid-operation: the DRAM side of
        // this shard may now disagree with PM, so stop serving. No write
        // in this batch may be acked durable — the batch never reaches
        // its epoch fence, and with batched chunk-header persists the
        // fence IS each write's durability point (the downgrade loop
        // below catches the ops that applied before the crash).
        failed_.store(true, std::memory_order_release);
        p.resp.status = Status::kShardFailed;
        p.resp.epoch = 0;
        stats_.failed.fetch_add(1, std::memory_order_relaxed);
      }
    }

    // Group commit: one epoch fence for the whole batch. Each op already
    // persisted its own data stores, and flush_epoch() flushes the
    // allocator's deferred chunk-header persists (batched_meta) before
    // stamping the epoch — so the fence's completion is what makes every
    // write in the batch durable, and it must precede all the acks below
    // (a request is never acked before its epoch completed).
    uint64_t epoch = 0;
    if (any_write && !failed_.load(std::memory_order_relaxed)) {
      const uint64_t f0 = mono_ns();
      try {
        epoch = hart_->flush_epoch();
        local_fence.record(mono_ns() - f0);
        stats_.epochs.fetch_add(1, std::memory_order_relaxed);
      } catch (const pmem::CrashPoint&) {
        // The fence itself crashed; the shard stops serving like any
        // other crash point, and the downgrade below keeps the batch's
        // acks truthful (its deferred header persists never completed).
        failed_.store(true, std::memory_order_release);
      }
    }
    if (failed_.load(std::memory_order_relaxed)) {
      // Crashed batch: writes that applied before the crash point never
      // reached the fence, so under batched metadata persists they may
      // not be durable. Refuse their acks — an acked write must survive
      // recovery; a refused-but-recovered write is merely conservative.
      for (auto& p : batch) {
        if (p.fence && is_acked_write(p.resp.status)) {
          p.resp.status = Status::kShardFailed;
          p.resp.epoch = 0;
          stats_.failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    // Deferred-latency arenas bank the injected PM delay instead of
    // spinning inside each persist; pay the whole batch's device time here
    // with one sleep, before the acks — so an ack still implies the
    // modeled device completed, but stalls of different shards overlap on
    // a time-shared host instead of serializing in busy-wait loops.
    stats_.device_ns.fetch_add(arena_->pay_latency(),
                               std::memory_order_relaxed);
    // Replication: collect the batch's durable writes for the sink. In
    // deferred-ack mode (quorum policy) the write acks move into the
    // DurableBatch instead of firing here — the sink releases them once
    // enough followers confirmed this batch's fence.
    const bool sink = static_cast<bool>(opts_.batch_sink);
    // Ack-ready timestamp: apply + fence + device pay all completed. The
    // whole batch becomes ready at once, so every op shares it for the
    // batch_residency / fence_wait stages below.
    const uint64_t ready_ns = mono_ns();
    DurableBatch durable;
    for (auto& p : batch) {
      local_resid.record(ready_ns > deq_ns ? ready_ns - deq_ns : 0);
      if (p.fence && p.apply_end_ns != 0) {
        const uint64_t fw =
            ready_ns > p.apply_end_ns ? ready_ns - p.apply_end_ns : 0;
        local_fwait.record(fw);
        if (p.req.trace_id != 0)
          trace_stage("fence", fw, shard_arg, p.req.trace_id);
      }
      if (opts_.slow_op_us != 0 && p.enq_ns != 0 &&
          ready_ns - p.enq_ns > opts_.slow_op_us * 1000) {
        const uint64_t total = ready_ns - p.enq_ns;
        const uint64_t queue_ns = deq_ns > p.enq_ns ? deq_ns - p.enq_ns : 0;
        const uint64_t apply_ns =
            p.apply_end_ns > deq_ns ? p.apply_end_ns - deq_ns : 0;
        const uint64_t fence_ns = p.apply_end_ns != 0 && p.fence
                                      ? ready_ns - p.apply_end_ns
                                      : 0;
        std::fprintf(stderr,
                     "hartd slow-op shard=%zu op=%u status=%s total_us=%" PRIu64
                     " queue_us=%" PRIu64 " apply_us=%" PRIu64
                     " fence_us=%" PRIu64 " trace=%016" PRIx64 "\n",
                     opts_.index, static_cast<unsigned>(p.req.op),
                     status_name(p.resp.status), total / 1000,
                     queue_ns / 1000, apply_ns / 1000, fence_ns / 1000,
                     p.req.trace_id);
        slow_ops_counter().inc();
      }
      if (p.fence && is_acked_write(p.resp.status)) {
        p.resp.epoch = epoch;
        stats_.write_acks.fetch_add(1, std::memory_order_relaxed);
        if (sink) {
          durable.entries.push_back({p.req.op, std::move(p.req.key),
                                     std::move(p.req.value),
                                     p.req.trace_id});
          if (opts_.defer_write_acks) {
            durable.deferred.push_back(
                {std::move(p.ack), std::move(p.resp), p.req.trace_id});
            continue;
          }
        }
      }
      if (p.ack) p.ack(std::move(p.resp));
    }
    if (sink && !durable.entries.empty()) {
      durable.epoch = epoch;
      opts_.batch_sink(opts_.index, std::move(durable));
    }
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    if (any_timed) {
      common::MutexLock lk(hist_mu_);
      for (size_t i = 0; i < ShardHistograms::kOps; ++i) {
        if (local_op[i].count() == 0) continue;
        hists_.op[i].merge(local_op[i]);
        local_op[i].reset();
      }
      if (local_fence.count() != 0) {
        hists_.fence.merge(local_fence);
        local_fence.reset();
      }
      auto fold = [](common::LatencyHistogram* local,
                     common::LatencyHistogram* global) {
        if (local->count() == 0) return;
        global->merge(*local);
        local->reset();
      };
      fold(&local_queue, &hists_.queue_wait);
      fold(&local_resid, &hists_.batch_residency);
      fold(&local_fwait, &hists_.fence_wait);
    }
  }
}

}  // namespace hart::server
