#include "server/hartd.h"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/trace.h"
#include "server/stats.h"

namespace hart::server {

Hartd::Hartd(const Options& opts) : opts_(opts) {
  if (opts_.shards == 0) throw std::invalid_argument("shards must be >= 1");
  shards_.resize(opts_.shards);
  obs::TraceSpan span("hartd_open", obs::TraceKind::kRecovery,
                      static_cast<uint32_t>(opts_.shards));
  const auto t0 = std::chrono::steady_clock::now();

  // Shard construction doubles as restart recovery for file-backed arenas
  // (Hart's constructor runs Algorithm 7 on a re-opened arena), so open
  // shards in parallel — recovery time is per-shard, not per-service.
  std::vector<std::thread> pool;
  std::vector<std::exception_ptr> errs(opts_.shards);
  for (size_t i = 0; i < opts_.shards; ++i) {
    pool.emplace_back([this, i, &errs] {
      try {
        Shard::Options so;
        so.index = i;
        so.batch_size = opts_.batch_size;
        so.queue_capacity = opts_.queue_capacity;
        so.hart = opts_.hart;
        so.arena.size = opts_.arena_mb << 20;  // 0 -> HART_ARENA_MB default
        so.arena.latency = opts_.latency;
        so.arena.defer_latency = opts_.defer_latency;
        so.arena.check = opts_.check;
        so.arena.shadow = opts_.shadow;
        if (!opts_.arena_dir.empty())
          so.arena.file_path =
              opts_.arena_dir + "/shard-" + std::to_string(i) + ".arena";
        shards_[i] = std::make_unique<Shard>(so);
      } catch (...) {
        errs[i] = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  for (auto& e : errs)
    if (e) std::rethrow_exception(e);

  reopened_ = !opts_.arena_dir.empty();
  for (auto& s : shards_) reopened_ = reopened_ && s->arena().reopened();
  recovery_ms_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  if (reopened_) recovered_keys_ = total_size();
}

Hartd::~Hartd() { shutdown(); }

bool Hartd::submit(Request req, Shard::Ack ack) {
  if (down_.load(std::memory_order_acquire)) {
    if (ack) ack(Response{Status::kShuttingDown, {}, 0});
    return false;
  }
  // kStats is answered here on the submitter's thread (both transports
  // funnel through submit), never routed to a shard — a scrape must not
  // count as a shard op or join a group-commit batch.
  if (req.op == OpCode::kStats) {
    Response r;
    r.status = Status::kOk;
    r.value = req.value == "json" ? stats_json(*this) : stats_prometheus(*this);
    if (r.value.size() > kMaxStatsPayload) {
      // Truncate on a line boundary so the payload stays parseable.
      const size_t cut = r.value.rfind('\n', kMaxStatsPayload);
      r.value.resize(cut == std::string::npos ? kMaxStatsPayload : cut + 1);
    }
    if (ack) ack(std::move(r));
    return true;
  }
  Shard& s = *shards_[shard_of(req.key)];
  if (!s.submit(std::move(req), ack)) {
    if (ack) ack(Response{Status::kShuttingDown, {}, 0});
    return false;
  }
  return true;
}

Response Hartd::execute(Request req) {
  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Response resp;
  };
  auto sync = std::make_shared<Sync>();
  submit(std::move(req), [sync](Response r) {
    std::lock_guard lk(sync->mu);
    sync->resp = std::move(r);
    sync->done = true;
    sync->cv.notify_one();
  });
  std::unique_lock lk(sync->mu);
  sync->cv.wait(lk, [&] { return sync->done; });
  return std::move(sync->resp);
}

void Hartd::shutdown() {
  if (down_.exchange(true)) return;
  for (auto& s : shards_) s->shutdown();
}

size_t Hartd::total_size() const {
  size_t n = 0;
  for (const auto& s : shards_) {
    const Shard& sh = *s;
    n += sh.hart().size();
  }
  return n;
}

}  // namespace hart::server
