#include "server/hartd.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <iterator>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/annotations.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "server/stats.h"

namespace hart::server {

namespace {
/// HARTscope: GET/MGET lookups answered kNotFound straight from a shard's
/// Bloom filter — the key never reached the Hart (or a queue).
obs::Counter& bloom_negative_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("hartd_bloom_negative_total");
  return c;
}
/// HARTscope: Bloom said "maybe" but the Hart said kNotFound (the filter's
/// false-positive tally; negatives / (negatives + fp) = filter hit rate).
obs::Counter& bloom_fp_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("hartd_bloom_fp_total");
  return c;
}
/// Client writes refused with kNotPrimary by the role gate (follower or
/// mid-promotion node) — visible in STATS on every role so an operator
/// can see misdirected traffic from the follower's side too.
obs::Counter& write_rejected_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("hartd_write_rejected_total");
  return c;
}
}  // namespace

Hartd::Hartd(const Options& opts)
    : opts_(opts),
      promo_(opts.follow ? repl::Role::kFollower : repl::Role::kPrimary) {
  if (opts_.shards == 0) throw std::invalid_argument("shards must be >= 1");
  if (!opts_.replicate_to.empty()) {
    repl::ReplicatorOptions ro;
    ro.targets = opts_.replicate_to;
    ro.policy = opts_.ack_policy;
    ro.streams = opts_.shards;
    ro.retain_batches = opts_.repl_log_batches;
    ro.window = opts_.repl_window;
    ro.slow_op_us = opts_.slow_op_us;
    repl_ = std::make_unique<repl::Replicator>(ro);
  }
  // Trace-id salt: ids must not collide between the primary and a
  // follower started in the same process (tests run both in-proc), so mix
  // the construction time with this object's address.
  trace_base_ = static_cast<uint64_t>(
                    std::chrono::steady_clock::now().time_since_epoch()
                        .count()) ^
                (reinterpret_cast<uintptr_t>(this) << 16);
  shards_.resize(opts_.shards);
  obs::TraceSpan span("hartd_open", obs::TraceKind::kRecovery,
                      static_cast<uint32_t>(opts_.shards));
  const auto t0 = std::chrono::steady_clock::now();

  // Shard construction doubles as restart recovery for file-backed arenas
  // (Hart's constructor runs Algorithm 7 on a re-opened arena), so open
  // shards in parallel — recovery time is per-shard, not per-service.
  std::vector<std::thread> pool;
  std::vector<std::exception_ptr> errs(opts_.shards);
  for (size_t i = 0; i < opts_.shards; ++i) {
    pool.emplace_back([this, i, &errs] {
      try {
        Shard::Options so;
        so.index = i;
        so.batch_size = opts_.batch_size;
        so.queue_capacity = opts_.queue_capacity;
        so.bloom_bits_per_key = opts_.bloom_bits_per_key;
        so.bloom_expected_keys = opts_.bloom_expected_keys;
        so.slow_op_us = opts_.slow_op_us;
        so.hart = opts_.hart;
        so.arena.size = opts_.arena_mb << 20;  // 0 -> HART_ARENA_MB default
        so.arena.latency = opts_.latency;
        so.arena.defer_latency = opts_.defer_latency;
        so.arena.check = opts_.check;
        so.arena.shadow = opts_.shadow;
        if (!opts_.arena_dir.empty())
          so.arena.file_path =
              opts_.arena_dir + "/shard-" + std::to_string(i) + ".arena";
        if (repl_) {
          so.batch_sink = [r = repl_.get()](size_t idx, DurableBatch&& b) {
            r->on_batch(idx, std::move(b));
          };
          so.defer_write_acks = opts_.ack_policy == repl::AckPolicy::kQuorum;
        }
        shards_[i] = std::make_unique<Shard>(so);
      } catch (...) {
        errs[i] = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  for (auto& e : errs)
    if (e) std::rethrow_exception(e);

  // In rwlock-reads ablation mode a dispatcher-side search would contend
  // on the partition shared_mutexes the shard worker also takes; the
  // original queued-read behavior is what the ablation measures, so the
  // kGet fast path turns itself off.
  fastpath_gets_ = opts_.fastpath_reads && !opts_.hart.rwlock_reads;

  if (opts_.follow) {
    // Replicated writes bypass the role gate (a follower rejects CLIENT
    // writes, not its replication stream) and route by the follower's own
    // shard count. The submit contract — ack exactly once, even on
    // refusal — is what the applier's completion counting relies on.
    applier_ = std::make_unique<repl::FollowerApplier>(
        [this](Request&& r, repl::FollowerApplier::Ack ack) {
          Shard& s = *shards_[shard_of(r.key)];
          Shard::Ack copy = ack;
          if (!s.submit(std::move(r), std::move(copy)))
            ack(Response{Status::kShuttingDown, {}, 0});
        });
  }

  reopened_ = !opts_.arena_dir.empty();
  for (auto& s : shards_) reopened_ = reopened_ && s->arena().reopened();
  recovery_ms_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  if (reopened_) recovered_keys_ = total_size();
}

Hartd::~Hartd() { shutdown(); }

bool Hartd::submit(Request req, Shard::Ack ack) {
  if (down_.load(std::memory_order_acquire)) {
    if (ack) ack(Response{Status::kShuttingDown, {}, 0});
    return false;
  }
  // Dispatcher-side trace sampling: stamp every Nth unsampled KV request
  // (client-stamped ids pass through untouched). Control-plane ops
  // (stats/repl/promote) are never sampled here.
  if (opts_.trace_sample != 0 && req.trace_id == 0 &&
      req.op <= OpCode::kPing &&
      trace_seq_.fetch_add(1, std::memory_order_relaxed) %
              opts_.trace_sample ==
          0) {
    req.trace_id = trace_base_ ^ (trace_seq_.load(std::memory_order_relaxed)
                                  << 1) ^ 1;
  }
  // Sampled requests get a dispatch span covering routing + any
  // dispatcher-served fast path (the shard stages record their own);
  // unsampled ops record nothing here.
  std::optional<obs::TraceSpan> dispatch_span;
  if (req.trace_id != 0 && obs::Tracer::instance().enabled())
    dispatch_span.emplace("dispatch", obs::TraceKind::kOp,
                          static_cast<uint32_t>(req.op), req.trace_id);
  // kStats is answered here on the submitter's thread (both transports
  // funnel through submit), never routed to a shard — a scrape must not
  // count as a shard op or join a group-commit batch.
  if (req.op == OpCode::kStats) {
    Response r;
    r.status = Status::kOk;
    r.value = req.value == "json" ? stats_json(*this) : stats_prometheus(*this);
    if (r.value.size() > kMaxStatsPayload) {
      // Truncate on a line boundary so the payload stays parseable.
      const size_t cut = r.value.rfind('\n', kMaxStatsPayload);
      r.value.resize(cut == std::string::npos ? kMaxStatsPayload : cut + 1);
    }
    if (ack) ack(std::move(r));
    return true;
  }
  // Replication control plane (DESIGN.md §9): these never touch a shard
  // queue directly. A REPL_BATCH is only applied by a live follower; its
  // response is the fence confirmation the primary's quorum counting
  // relies on, so any wrong-role delivery must be refused, not absorbed.
  if (req.op == OpCode::kReplBatch) {
    if (applier_ && promo_.accepts_repl_batches()) {
      applier_->apply(std::move(req), std::move(ack));
      return true;
    }
    if (ack) ack(Response{Status::kNotPrimary, {}, 0});
    return true;
  }
  if (req.op == OpCode::kReplAck) {
    Response r;
    r.status = encode_repl_positions(repl_positions(), &r.value)
                   ? Status::kOk
                   : Status::kBadRequest;
    if (ack) ack(std::move(r));
    return true;
  }
  if (req.op == OpCode::kPromote) {
    // Tail replay + role flip; concurrent PROMOTEs serialize inside the
    // machine and all report the same success (idempotent).
    promo_.promote([this] { drain_shard_queues(); });
    Response r;
    r.status = encode_repl_positions(repl_positions(), &r.value)
                   ? Status::kOk
                   : Status::kBadRequest;
    if (ack) ack(std::move(r));
    return true;
  }
  // Dispatcher read fast path: HART's optimistic read protocol makes a
  // search from this thread lock-free and safe against the shard worker's
  // concurrent writes, so point and batch reads never queue behind a
  // group-commit batch. kMget/kScan span shards and are always answered
  // here; kGet only when the fast path is enabled (see Options).
  if (req.op == OpCode::kMget) {
    if (ack) ack(serve_mget(req));
    return true;
  }
  if (req.op == OpCode::kScan) {
    if (ack) ack(serve_scan(req));
    return true;
  }
  if (req.op == OpCode::kGet && fastpath_gets_) {
    if (ack) ack(serve_get(req));
    return true;
  }
  // Role gate: only a primary accepts client writes. Followers (and a
  // node mid-promotion, whose drain must see a frozen queue tail) refuse
  // with kNotPrimary so clients redirect instead of silently diverging
  // from the replication stream.
  if (is_write(req.op) && !promo_.accepts_writes()) {
    write_rejected_counter().inc();
    if (ack) ack(Response{Status::kNotPrimary, {}, 0});
    return true;
  }
  // Bloom short-circuit for queued GETs (the kGet fast path is off — the
  // rwlock-reads ablation): a definitive miss is answered here without
  // ever entering the shard queue. Consistent with the fast path above,
  // which also serves reads ahead of queued unacked writes.
  if (req.op == OpCode::kGet &&
      !shards_[shard_of(req.key)]->bloom_may_contain(req.key)) {
    bloom_negative_counter().inc();
    if (ack) ack(Response{Status::kNotFound, {}, 0});
    return true;
  }
  Shard& s = *shards_[shard_of(req.key)];
  if (!s.submit(std::move(req), ack)) {
    if (ack) ack(Response{Status::kShuttingDown, {}, 0});
    return false;
  }
  return true;
}

std::vector<ReplPosition> Hartd::repl_positions() const {
  if (applier_) return applier_->positions();
  if (repl_) return repl_->tail_positions();
  return {};
}

void Hartd::drain_shard_queues() {
  struct Latch {
    common::Mutex mu;
    common::CondVar cv;
    size_t n GUARDED_BY(mu) = 0;
  };
  auto latch = std::make_shared<Latch>();
  {
    common::MutexLock lk(latch->mu);
    latch->n = shards_.size();
  }
  auto arrive = [latch] {
    common::MutexLock lk(latch->mu);
    if (--latch->n == 0) latch->cv.notify_all();
  };
  for (auto& s : shards_) {
    Request ping;
    ping.op = OpCode::kPing;
    if (!s->submit(std::move(ping), [arrive](Response) { arrive(); }))
      arrive();
  }
  common::MutexLock lk(latch->mu);
  while (latch->n > 0) latch->cv.wait(latch->mu);
}

Response Hartd::serve_get(const Request& req) {
  Response r;
  Shard& s = *shards_[shard_of(req.key)];
  if (s.failed()) {
    r.status = Status::kShardFailed;
    return r;
  }
  // Bloom guard: a definitive miss never descends into the Hart at all.
  if (!s.bloom_may_contain(req.key)) {
    bloom_negative_counter().inc();
    r.status = Status::kNotFound;
    fastpath_reads_.fetch_add(1, std::memory_order_relaxed);
    return r;
  }
  r.status = wire_status(s.hart().search(req.key, &r.value));
  if (r.status == Status::kNotFound && s.has_bloom())
    bloom_fp_counter().inc();
  fastpath_reads_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

Response Hartd::serve_mget(const Request& req) {
  Response r;
  std::vector<std::string> keys;
  if (!decode_mget_keys(req.value, &keys)) {
    r.status = Status::kBadRequest;
    return r;
  }
  const size_t n = keys.size();
  std::vector<std::string> vals(n);
  std::vector<bool> found(n, false);
  // Group request slots by shard so each shard's keys are served with a
  // single Hart::multi_get (one EBR guard, partition-grouped probing).
  // Bloom-filtered keys never join a group: found[i] stays false and the
  // shard is not probed for them.
  std::vector<std::vector<size_t>> groups(shards_.size());
  for (size_t i = 0; i < n; ++i) {
    const size_t si = shard_of(keys[i]);
    if (!shards_[si]->bloom_may_contain(keys[i])) {
      bloom_negative_counter().inc();
      continue;
    }
    groups[si].push_back(i);
  }
  std::vector<std::string> gkeys;
  std::vector<std::string> gvals;
  std::vector<bool> gfound;
  for (size_t si = 0; si < shards_.size(); ++si) {
    if (groups[si].empty()) continue;
    if (shards_[si]->failed()) {
      r.status = Status::kShardFailed;
      return r;
    }
    gkeys.clear();
    for (const size_t i : groups[si]) gkeys.push_back(keys[i]);
    shards_[si]->hart().multi_get(gkeys, &gvals, &gfound);
    for (size_t j = 0; j < groups[si].size(); ++j) {
      vals[groups[si][j]] = std::move(gvals[j]);
      found[groups[si][j]] = gfound[j];
      if (!gfound[j] && shards_[si]->has_bloom()) bloom_fp_counter().inc();
    }
  }
  r.status = encode_mget_result(vals, found, &r.value) ? Status::kOk
                                                       : Status::kBadRequest;
  fastpath_reads_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

Response Hartd::serve_scan(const Request& req) {
  Response r;
  uint32_t limit = 0;
  if (!decode_scan_limit(req.value, &limit) ||
      !common::validate_key(req.key).ok()) {
    r.status = Status::kBadRequest;
    return r;
  }
  const size_t lim = std::min<size_t>(limit, kMaxBatchEntries);
  // Keys are hash-partitioned across shards, so every shard can hold part
  // of the range: take `lim` from each, merge (each shard's slice is
  // already ascending) and keep the smallest `lim`.
  std::vector<std::pair<std::string, std::string>> all;
  std::vector<std::pair<std::string, std::string>> part;
  for (const auto& s : shards_) {
    if (s->failed()) {
      r.status = Status::kShardFailed;
      return r;
    }
    s->hart().range(req.key, lim, &part);
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::sort(all.begin(), all.end());
  if (all.size() > lim) all.resize(lim);
  r.status = encode_scan_result(all, &r.value) ? Status::kOk
                                               : Status::kBadRequest;
  fastpath_reads_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

Response Hartd::execute(Request req) {
  struct Sync {
    common::Mutex mu;
    common::CondVar cv;
    bool done GUARDED_BY(mu) = false;
    Response resp GUARDED_BY(mu);
  };
  auto sync = std::make_shared<Sync>();
  submit(std::move(req), [sync](Response r) {
    {
      common::MutexLock lk(sync->mu);
      sync->resp = std::move(r);
      sync->done = true;
    }
    sync->cv.notify_one();
  });
  common::MutexLock lk(sync->mu);
  while (!sync->done) sync->cv.wait(sync->mu);
  return std::move(sync->resp);
}

void Hartd::shutdown() {
  if (down_.exchange(true)) return;
  // Shards first: joining the workers flushes every queued batch through
  // the batch sink, so the replication log holds the final tail before the
  // links drain it. Bounded drain — a dead follower must not hang exit.
  for (auto& s : shards_) s->shutdown();
  if (repl_) {
    repl_->drain(std::chrono::seconds(5));
    repl_->shutdown();
  }
}

size_t Hartd::total_size() const {
  size_t n = 0;
  for (const auto& s : shards_) {
    const Shard& sh = *s;
    n += sh.hart().size();
  }
  return n;
}

}  // namespace hart::server
