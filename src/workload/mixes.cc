#include "workload/mixes.h"

#include <stdexcept>

#include "common/rng.h"

namespace hart::workload {

std::vector<Op> make_mixed_ops(size_t n_ops, size_t preload,
                               size_t pool_size, const MixSpec& mix,
                               uint64_t seed, DistKind dist, double theta) {
  if (mix.insert_pct + mix.search_pct + mix.update_pct + mix.delete_pct !=
      100)
    throw std::invalid_argument("mix percentages must sum to 100");
  if (preload == 0) throw std::invalid_argument("preload must be > 0");

  common::Rng rng(seed);
  RequestDist picker(dist, theta);
  std::vector<Op> ops;
  ops.reserve(n_ops);
  // Live key indices, supporting O(1) uniform pick and swap-remove.
  std::vector<uint32_t> live;
  live.reserve(preload + n_ops);
  for (size_t i = 0; i < preload; ++i)
    live.push_back(static_cast<uint32_t>(i));
  size_t next_fresh = preload;

  for (size_t i = 0; i < n_ops; ++i) {
    const auto dice = static_cast<int>(rng.next_below(100));
    if (dice < mix.insert_pct) {
      if (next_fresh >= pool_size)
        throw std::invalid_argument("key pool exhausted by inserts");
      ops.push_back({OpType::kInsert, static_cast<uint32_t>(next_fresh)});
      live.push_back(static_cast<uint32_t>(next_fresh));
      ++next_fresh;
      continue;
    }
    if (live.empty()) {  // degenerate: everything deleted; re-insert
      ops.push_back({OpType::kInsert, static_cast<uint32_t>(next_fresh)});
      live.push_back(static_cast<uint32_t>(next_fresh));
      ++next_fresh;
      continue;
    }
    const size_t pick = picker.next_below(live.size(), rng);
    const uint32_t key = live[pick];
    if (dice < mix.insert_pct + mix.search_pct) {
      ops.push_back({OpType::kSearch, key});
    } else if (dice < mix.insert_pct + mix.search_pct + mix.update_pct) {
      ops.push_back({OpType::kUpdate, key});
    } else {
      ops.push_back({OpType::kDelete, key});
      live[pick] = live.back();
      live.pop_back();
    }
  }
  return ops;
}

}  // namespace hart::workload
