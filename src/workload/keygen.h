// Workload key generators (paper Section IV.A): Dictionary, Sequential and
// Random, all deterministic (seeded) so experiments are reproducible.
//
//  * Dictionary — a synthetic stand-in for the 466,544-word English
//    dictionary of [19]: distinct alphabetic words produced by a seeded
//    syllable model matching English-like length (2..24) and prefix
//    statistics. See DESIGN.md (substitution table).
//  * Sequential — fixed-width base-62 counter strings, in order.
//  * Random — variable-size strings (5..16 bytes) over the 62-character
//    alphabet A-Z a-z 0-9, exactly as described in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hart::workload {

inline constexpr size_t kDictionaryWords = 466544;  // paper: 466,544 words

/// Distinct sequential keys: base-62 big-endian counters of fixed width.
std::vector<std::string> make_sequential(size_t n, uint32_t width = 10);

/// Distinct random keys, lengths uniform in [min_len, max_len], alphabet
/// A-Za-z0-9.
std::vector<std::string> make_random(size_t n, uint64_t seed,
                                     uint32_t min_len = 5,
                                     uint32_t max_len = 16);

/// Distinct English-like words (syllable model), lengths 2..24. `n`
/// defaults to the paper's dictionary size via kDictionaryWords.
std::vector<std::string> make_dictionary(size_t n, uint64_t seed = 19);

/// The workloads of Figs. 4-8 by name, sized to `n` records.
enum class WorkloadKind { kDictionary, kSequential, kRandom };
const char* workload_name(WorkloadKind k);
std::vector<std::string> make_workload(WorkloadKind k, size_t n,
                                       uint64_t seed = 42);

}  // namespace hart::workload
