// YCSB-style mixed workloads (paper Section IV.C): operation streams with
// the paper's exact mixes over a Uniform request distribution.
//
//   Read-Intensive      10% insert / 70% search / 10% update / 10% delete
//   Read-Modified-Write 50% search / 50% update
//   Write-Intensive     40% insert / 20% search / 40% update
//
// A stream is generated against a pool of distinct keys: the first
// `preload` keys are inserted up front; inserts consume fresh keys from the
// pool; search/update/delete pick uniformly among currently-live keys
// (delete removes from the live set).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/distribution.h"

namespace hart::workload {

enum class OpType : uint8_t { kInsert, kSearch, kUpdate, kDelete };

struct Op {
  OpType type;
  uint32_t key_idx;  // index into the key pool
};

struct MixSpec {
  const char* name;
  int insert_pct;
  int search_pct;
  int update_pct;
  int delete_pct;
};

inline constexpr MixSpec kReadIntensive{"Read-Intensive", 10, 70, 10, 10};
inline constexpr MixSpec kReadModifyWrite{"Read-Modified-Write", 0, 50, 50,
                                          0};
inline constexpr MixSpec kWriteIntensive{"Write-Intensive", 40, 20, 40, 0};

/// Generate `n_ops` operations. The pool must contain at least
/// `preload + n_ops * insert_pct/100 + 1` keys. `dist` selects which live
/// key a search/update/delete targets: the paper uses Uniform; Zipfian and
/// Latest are extensions (see distribution.h). `theta` is the Zipfian skew
/// (YCSB's 0.99 by default; ignored for other distributions).
std::vector<Op> make_mixed_ops(size_t n_ops, size_t preload,
                               size_t pool_size, const MixSpec& mix,
                               uint64_t seed,
                               DistKind dist = DistKind::kUniform,
                               double theta = 0.99);

}  // namespace hart::workload
