#include "workload/keygen.h"

#include <stdexcept>
#include <unordered_set>

#include "common/rng.h"

namespace hart::workload {

namespace {
// ASCII-ordered so sequential keys are lexicographically increasing.
constexpr char kAlphabet[] =
    "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
constexpr uint32_t kAlphabetSize = 62;
}  // namespace

std::vector<std::string> make_sequential(size_t n, uint32_t width) {
  if (width < 1 || width > 24)
    throw std::invalid_argument("sequential width must be 1..24");
  std::vector<std::string> keys;
  keys.reserve(n);
  std::string cur(width, kAlphabet[0]);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(cur);
    // Increment the base-62 counter (big-endian).
    for (int pos = static_cast<int>(width) - 1; pos >= 0; --pos) {
      const char* at = std::char_traits<char>::find(
          kAlphabet, kAlphabetSize, cur[pos]);
      const auto digit = static_cast<uint32_t>(at - kAlphabet);
      if (digit + 1 < kAlphabetSize) {
        cur[pos] = kAlphabet[digit + 1];
        break;
      }
      cur[pos] = kAlphabet[0];
      if (pos == 0) throw std::overflow_error("sequential space exhausted");
    }
  }
  return keys;
}

std::vector<std::string> make_random(size_t n, uint64_t seed,
                                     uint32_t min_len, uint32_t max_len) {
  if (min_len < 1 || max_len > 24 || min_len > max_len)
    throw std::invalid_argument("random key lengths must be within 1..24");
  common::Rng rng(seed);
  std::vector<std::string> keys;
  keys.reserve(n);
  std::unordered_set<std::string> seen;
  seen.reserve(n * 2);
  while (keys.size() < n) {
    const uint32_t len =
        min_len + static_cast<uint32_t>(rng.next_below(max_len - min_len + 1));
    std::string s(len, '\0');
    for (uint32_t i = 0; i < len; ++i)
      s[i] = kAlphabet[rng.next_below(kAlphabetSize)];
    if (seen.insert(s).second) keys.push_back(std::move(s));
  }
  return keys;
}

std::vector<std::string> make_dictionary(size_t n, uint64_t seed) {
  // English-like words from a syllable model: (onset? vowel coda?)+ with a
  // geometric syllable count. Distinctness enforced by a hash set.
  static constexpr const char* kOnsets[] = {
      "b", "c",  "d",  "f",  "g",  "h",  "j",  "k",  "l",  "m",
      "n", "p",  "r",  "s",  "t",  "v",  "w",  "y",  "z",  "ch",
      "sh", "th", "st", "tr", "pl", "br", "gr", "cl", "fr", "sp"};
  static constexpr const char* kVowels[] = {"a",  "e",  "i",  "o",  "u",
                                            "ai", "ea", "ou", "io", "oo"};
  static constexpr const char* kCodas[] = {"",  "",  "",  "n", "r", "s",
                                           "t", "l", "m", "ng", "rd", "ck"};
  common::Rng rng(seed);
  std::vector<std::string> words;
  words.reserve(n);
  std::unordered_set<std::string> seen;
  seen.reserve(n * 2);
  while (words.size() < n) {
    std::string w;
    const uint32_t syllables =
        1 + static_cast<uint32_t>(rng.next_below(4)) +
        static_cast<uint32_t>(rng.next_below(2));
    for (uint32_t s = 0; s < syllables; ++s) {
      if (s > 0 || rng.next_below(10) < 9)
        w += kOnsets[rng.next_below(std::size(kOnsets))];
      w += kVowels[rng.next_below(std::size(kVowels))];
      if (rng.next_below(10) < 4) w += kCodas[rng.next_below(std::size(kCodas))];
    }
    if (w.size() < 2 || w.size() > 24) continue;
    if (seen.insert(w).second) words.push_back(std::move(w));
  }
  return words;
}

const char* workload_name(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kDictionary: return "Dictionary";
    case WorkloadKind::kSequential: return "Sequential";
    default: return "Random";
  }
}

std::vector<std::string> make_workload(WorkloadKind k, size_t n,
                                       uint64_t seed) {
  switch (k) {
    case WorkloadKind::kDictionary: return make_dictionary(n, seed);
    case WorkloadKind::kSequential: return make_sequential(n);
    default: return make_random(n, seed);
  }
}

}  // namespace hart::workload
