// Request distributions for workload generation. The paper's mixed
// workloads use YCSB's Uniform distribution only (Section IV.C); Zipfian
// and Latest are provided as extensions so skewed-access behaviour (hot
// ARTs, lock contention on popular prefixes) can be studied too.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace hart::workload {

enum class DistKind { kUniform, kZipfian, kLatest };

inline const char* dist_name(DistKind d) {
  switch (d) {
    case DistKind::kUniform: return "Uniform";
    case DistKind::kZipfian: return "Zipfian";
    default: return "Latest";
  }
}

/// Zipfian generator over [0, n) using the Gray/Jim-Gray rejection method
/// (the same algorithm YCSB uses), theta = 0.99 by default. Supports a
/// growing item count: next_below(n) re-derives constants lazily when n
/// changes (amortized cheap for the insert-heavy mixes).
class ZipfianGen {
 public:
  explicit ZipfianGen(double theta = 0.99) : theta_(theta) {}

  uint64_t next_below(uint64_t n, common::Rng& rng) {
    if (n == 0) return 0;
    if (n != n_) recompute(n);
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  void recompute(uint64_t n) {
    // Incremental zeta: extend from the previous n when possible.
    if (n > n_) {
      for (uint64_t i = n_; i < n; ++i)
        zetan_ += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
    } else {
      zetan_ = 0;
      for (uint64_t i = 0; i < n; ++i)
        zetan_ += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
    }
    n_ = n;
    alpha_ = 1.0 / (1.0 - theta_);
    const double zeta2 = 1.0 + std::pow(0.5, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  double theta_;
  uint64_t n_ = 0;
  double zetan_ = 0;
  double alpha_ = 0;
  double eta_ = 0;
};

/// Pick an index in [0, n) under the given distribution. For kLatest, the
/// *highest* indices (most recently inserted) are the hottest — implemented
/// as n-1 minus a Zipfian draw, as in YCSB.
class RequestDist {
 public:
  explicit RequestDist(DistKind kind, double theta = 0.99)
      : kind_(kind), zipf_(theta) {}

  uint64_t next_below(uint64_t n, common::Rng& rng) {
    if (n <= 1) return 0;
    switch (kind_) {
      case DistKind::kUniform: return rng.next_below(n);
      case DistKind::kZipfian: {
        const uint64_t v = zipf_.next_below(n, rng);
        return v < n ? v : n - 1;
      }
      default: {
        const uint64_t v = zipf_.next_below(n, rng);
        return n - 1 - (v < n ? v : n - 1);
      }
    }
  }

  [[nodiscard]] DistKind kind() const { return kind_; }

 private:
  DistKind kind_;
  ZipfianGen zipf_;
};

}  // namespace hart::workload
