#include "fptree/fptree.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "woart/pm_nodes.h"  // PmValue / alloc_value / free_value

namespace hart::fptree {

namespace {
constexpr uint64_t kFpMagic = 0x46505452'45450001ULL;
constexpr uint64_t kLeafFullMask = (uint64_t{1} << kLeafSlots) - 1;

std::string_view entry_key(const FpLeaf::Entry& e) {
  return {e.key, e.klen};
}
}  // namespace

uint8_t FpTree::fingerprint(std::string_view key) {
  uint32_t h = 2166136261u;  // FNV-1a, folded to one byte
  for (const char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return static_cast<uint8_t>(h ^ (h >> 8) ^ (h >> 16) ^ (h >> 24));
}

FpTree::FpTree(pmem::Arena& arena)
    : arena_(arena), root_(arena.root<Root>()) {
  if (root_->magic == kFpMagic) {
    recover();
  } else {
    *root_ = Root{};
    root_->magic = kFpMagic;
    arena_.persist(root_, sizeof(*root_));
  }
}

FpTree::~FpTree() {
  if (!root_is_leaf_ && tree_root_ != 0) free_inner_rec(tree_root_, false);
}

FpTree::Inner* FpTree::new_inner() {
  auto* p = new Inner();
  dram_bytes_.fetch_add(sizeof(Inner), std::memory_order_relaxed);
  return p;
}

void FpTree::free_inner_rec(uint64_t ref, bool /*is_leaf_level*/) {
  Inner* n = inner_at(ref);
  if (!n->child_is_leaf)
    for (uint16_t i = 0; i < n->count; ++i)
      free_inner_rec(n->children[i], false);
  dram_bytes_.fetch_sub(sizeof(Inner), std::memory_order_relaxed);
  delete n;
}

uint64_t FpTree::alloc_leaf() {
  const uint64_t off = arena_.alloc(sizeof(FpLeaf), 64);
  auto* l = leaf_at(off);
  std::memset(l, 0, sizeof(FpLeaf));
  return off;
}

int FpTree::find_slot(const FpLeaf* l, std::string_view key,
                      uint8_t fp) const {
  arena_.pm_read(l->fp, sizeof(l->fp));  // the fingerprint scan
  for (uint32_t i = 0; i < kLeafSlots; ++i) {
    if (((l->bitmap >> i) & 1) == 0 || l->fp[i] != fp) continue;
    arena_.pm_read(&l->kv[i], sizeof(FpLeaf::Entry));
    if (entry_key(l->kv[i]) == key) return static_cast<int>(i);
  }
  return -1;
}

int FpTree::free_slot(const FpLeaf* l) const {
  const auto i = static_cast<uint32_t>(std::countr_one(l->bitmap));
  return i < kLeafSlots ? static_cast<int>(i) : -1;
}

IKey FpTree::leaf_min_key(const FpLeaf* l) const {
  IKey best;
  bool have = false;
  for (uint32_t i = 0; i < kLeafSlots; ++i)
    if ((l->bitmap >> i) & 1) {
      IKey k = IKey::of(entry_key(l->kv[i]));
      if (!have || k < best) {
        best = k;
        have = true;
      }
    }
  assert(have);
  return best;
}

uint64_t FpTree::descend(std::string_view key) const {
  uint64_t ref = tree_root_;
  bool is_leaf = root_is_leaf_;
  while (!is_leaf) {
    const Inner* n = inner_at(ref);
    const IKey k = IKey::of(key);
    const auto* end = n->keys + (n->count - 1);
    const auto* it = std::upper_bound(n->keys, end, k);
    ref = n->children[it - n->keys];
    is_leaf = n->child_is_leaf;
  }
  return ref;
}

// Write a fresh entry into `slot` (allocating its out-of-leaf value) and
// commit it via the bitmap word.
void FpTree::leaf_put(FpLeaf* l, int slot, std::string_view key,
                      std::string_view value, uint8_t fp) {
  auto& e = l->kv[slot];
  e.p_value = pmart::alloc_value(arena_, value);
  std::memcpy(e.key, key.data(), key.size());
  e.klen = static_cast<uint8_t>(key.size());
  arena_.persist(&e, sizeof(e));
  l->fp[slot] = fp;
  arena_.persist(&l->fp[slot], 1);
  l->bitmap |= (uint64_t{1} << slot);  // atomic commit
  arena_.persist(&l->bitmap, sizeof(l->bitmap));
}

// Split `leaf_off` around its median key, guarded by the split micro-log.
FpTree::Split FpTree::split_leaf(uint64_t leaf_off) {
  FpLeaf* cur = leaf_at(leaf_off);

  // Choose the median of the in-leaf keys; entries >= median move right.
  std::vector<IKey> keys;
  keys.reserve(kLeafSlots);
  for (uint32_t i = 0; i < kLeafSlots; ++i)
    if ((cur->bitmap >> i) & 1) keys.push_back(IKey::of(entry_key(cur->kv[i])));
  std::nth_element(keys.begin(), keys.begin() + keys.size() / 2, keys.end());
  const IKey median = keys[keys.size() / 2];

  // µlog step 1: record the leaf being split.
  root_->slog_cur = leaf_off;
  arena_.persist(&root_->slog_cur, sizeof(root_->slog_cur));

  // Build the new right sibling in full, then persist it.
  const uint64_t right_off = alloc_leaf();
  FpLeaf* right = leaf_at(right_off);
  uint64_t moved = 0;
  uint32_t j = 0;
  for (uint32_t i = 0; i < kLeafSlots; ++i) {
    if (((cur->bitmap >> i) & 1) == 0) continue;
    if (entry_key(cur->kv[i]) < median.view()) continue;
    right->kv[j] = cur->kv[i];
    right->fp[j] = cur->fp[i];
    right->bitmap |= (uint64_t{1} << j);
    ++j;
    moved |= (uint64_t{1} << i);
  }
  right->next = cur->next;
  arena_.persist(right, sizeof(FpLeaf));

  // µlog step 2: the new leaf is ready; from here recovery can redo.
  root_->slog_new = right_off;
  arena_.persist(&root_->slog_new, sizeof(root_->slog_new));

  cur->next = right_off;
  arena_.persist(&cur->next, sizeof(cur->next));
  cur->bitmap &= ~moved;  // atomic removal of the moved entries
  arena_.persist(&cur->bitmap, sizeof(cur->bitmap));

  root_->slog_cur = root_->slog_new = 0;
  arena_.persist(&root_->slog_cur, 2 * sizeof(uint64_t));

  Split s;
  s.happened = true;
  s.sep = median;
  s.right = right_off;
  return s;
}

// Redo or roll back an interrupted split (constructor/recover path).
void FpTree::finish_split_log() {
  if (root_->slog_cur == 0) return;
  if (root_->slog_new != 0) {
    FpLeaf* cur = leaf_at(root_->slog_cur);
    FpLeaf* right = leaf_at(root_->slog_new);
    if (cur->next != root_->slog_new) {
      cur->next = root_->slog_new;
      arena_.persist(&cur->next, sizeof(cur->next));
    }
    // Clear entries from cur that were moved right (present in both).
    uint64_t moved = 0;
    for (uint32_t i = 0; i < kLeafSlots; ++i) {
      if (((cur->bitmap >> i) & 1) == 0) continue;
      for (uint32_t k = 0; k < kLeafSlots; ++k)
        if (((right->bitmap >> k) & 1) &&
            entry_key(right->kv[k]) == entry_key(cur->kv[i]))
          moved |= (uint64_t{1} << i);
    }
    if (moved != 0) {
      cur->bitmap &= ~moved;
      arena_.persist(&cur->bitmap, sizeof(cur->bitmap));
    }
  }
  // slog_new == 0: the new leaf was never linked; it is unreachable and the
  // allocation-map rebuild reclaims it. Either way, reset the log.
  root_->slog_cur = root_->slog_new = 0;
  arena_.persist(&root_->slog_cur, 2 * sizeof(uint64_t));
}

FpTree::Split FpTree::insert_rec(uint64_t ref, bool is_leaf,
                                 std::string_view key,
                                 std::string_view value, bool* inserted) {
  if (is_leaf) {
    FpLeaf* l = leaf_at(ref);
    const uint8_t fp = fingerprint(key);
    const int existing = find_slot(l, key, fp);
    if (existing >= 0) {
      // Out-of-place value update: allocate and persist the new value,
      // swing the entry's 8-byte value pointer, free the old value.
      *inserted = false;
      auto& e = l->kv[existing];
      const uint64_t old = e.p_value;
      e.p_value = pmart::alloc_value(arena_, value);
      arena_.persist(&e.p_value, sizeof(e.p_value));
      pmart::free_value(arena_, old);
      return {};
    }
    *inserted = true;
    int slot = free_slot(l);
    if (slot >= 0) {
      leaf_put(l, slot, key, value, fp);
      return {};
    }
    const Split s = split_leaf(ref);
    FpLeaf* target = key < s.sep.view() ? l : leaf_at(s.right);
    slot = free_slot(target);
    assert(slot >= 0);
    leaf_put(target, slot, key, value, fp);
    return s;
  }

  Inner* n = inner_at(ref);
  const IKey k = IKey::of(key);
  const IKey* begin = n->keys;
  const IKey* it = std::upper_bound(begin, begin + (n->count - 1), k);
  const auto idx = static_cast<uint32_t>(it - begin);
  const Split child_split =
      insert_rec(n->children[idx], n->child_is_leaf, key, value, inserted);
  if (!child_split.happened) return {};

  // Insert (sep, right) after child idx; split this inner if full.
  if (n->count < kInnerFan) {
    for (uint32_t i = n->count - 1; i > idx; --i) {
      n->keys[i] = n->keys[i - 1];
      n->children[i + 1] = n->children[i];
    }
    n->keys[idx] = child_split.sep;
    n->children[idx + 1] = child_split.right;
    ++n->count;
    return {};
  }
  // Inner split (DRAM only — no persistence needed).
  std::vector<IKey> keys(n->keys, n->keys + (n->count - 1));
  std::vector<uint64_t> children(n->children, n->children + n->count);
  keys.insert(keys.begin() + idx, child_split.sep);
  children.insert(children.begin() + idx + 1, child_split.right);
  const size_t total = children.size();
  const size_t left_n = total / 2;

  Inner* rightn = new_inner();
  rightn->child_is_leaf = n->child_is_leaf;
  rightn->count = static_cast<uint16_t>(total - left_n);
  for (size_t i = 0; i < total - left_n; ++i)
    rightn->children[i] = children[left_n + i];
  for (size_t i = 0; i + 1 < total - left_n; ++i)
    rightn->keys[i] = keys[left_n + i];

  n->count = static_cast<uint16_t>(left_n);
  for (size_t i = 0; i < left_n; ++i) n->children[i] = children[i];
  for (size_t i = 0; i + 1 < left_n; ++i) n->keys[i] = keys[i];

  Split up;
  up.happened = true;
  up.sep = keys[left_n - 1];
  up.right = inner_ref(rightn);
  return up;
}

common::Status FpTree::insert(std::string_view key, std::string_view value) {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  if (auto s = common::validate_value(value); !s.ok()) return s;
  if (tree_root_ == 0) {  // very first leaf
    const uint64_t off = alloc_leaf();
    FpLeaf* l = leaf_at(off);
    leaf_put(l, 0, key, value, fingerprint(key));
    arena_.persist(l, sizeof(FpLeaf));
    root_->head = off;
    arena_.persist(&root_->head, sizeof(root_->head));
    tree_root_ = off;
    root_is_leaf_ = true;
    count_ = 1;
    return common::Status::kInserted;
  }
  bool inserted = false;
  const Split s = insert_rec(tree_root_, root_is_leaf_, key, value,
                             &inserted);
  if (s.happened) {
    Inner* nr = new_inner();
    nr->child_is_leaf = root_is_leaf_;
    nr->count = 2;
    nr->keys[0] = s.sep;
    nr->children[0] = tree_root_;
    nr->children[1] = s.right;
    tree_root_ = inner_ref(nr);
    root_is_leaf_ = false;
  }
  if (inserted) ++count_;
  return inserted ? common::Status::kInserted : common::Status::kUpdated;
}

common::Status FpTree::search(std::string_view key, std::string* out) const {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  if (tree_root_ == 0) return common::Status::kNotFound;
  const uint64_t loff = descend(key);
  const FpLeaf* l = leaf_at(loff);
  const int slot = find_slot(l, key, fingerprint(key));
  if (slot < 0) return common::Status::kNotFound;
  const auto* v = arena_.ptr<pmart::PmValue>(l->kv[slot].p_value);
  arena_.pm_read(v, 1 + v->len);
  if (out != nullptr) out->assign(v->data, v->len);
  return common::Status::kOk;
}

common::Status FpTree::update(std::string_view key, std::string_view value) {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  if (auto s = common::validate_value(value); !s.ok()) return s;
  if (tree_root_ == 0) return common::Status::kNotFound;
  // Reuse the insert path's update branch only when the key exists.
  if (!search(key, nullptr).ok()) return common::Status::kNotFound;
  bool inserted = false;
  const Split s = insert_rec(tree_root_, root_is_leaf_, key, value,
                             &inserted);
  if (s.happened) {
    Inner* nr = new_inner();
    nr->child_is_leaf = root_is_leaf_;
    nr->count = 2;
    nr->keys[0] = s.sep;
    nr->children[0] = tree_root_;
    nr->children[1] = s.right;
    tree_root_ = inner_ref(nr);
    root_is_leaf_ = false;
  }
  assert(!inserted);
  return common::Status::kOk;
}

common::Status FpTree::remove(std::string_view key) {
  if (auto s = common::validate_key(key); !s.ok()) return s;
  if (tree_root_ == 0) return common::Status::kNotFound;
  const uint64_t loff = descend(key);
  FpLeaf* l = leaf_at(loff);
  const int slot = find_slot(l, key, fingerprint(key));
  if (slot < 0) return common::Status::kNotFound;
  const uint64_t voff = l->kv[slot].p_value;
  l->bitmap &= ~(uint64_t{1} << slot);  // atomic un-commit; no coalescing
  arena_.persist(&l->bitmap, sizeof(l->bitmap));
  pmart::free_value(arena_, voff);
  --count_;
  return common::Status::kOk;
}

size_t FpTree::range(
    std::string_view lo, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) const {
  out->clear();
  if (!common::validate_key(lo).ok()) return 0;
  if (limit == 0 || tree_root_ == 0) return 0;
  uint64_t loff = descend(lo);
  while (loff != 0 && out->size() < limit) {
    const FpLeaf* l = leaf_at(loff);
    arena_.pm_read(l, sizeof(uint64_t) + sizeof(l->fp));
    std::vector<std::pair<std::string, std::string>> batch;
    for (uint32_t i = 0; i < kLeafSlots; ++i)
      if ((l->bitmap >> i) & 1) {
        arena_.pm_read(&l->kv[i], sizeof(FpLeaf::Entry));
        std::string k(l->kv[i].key, l->kv[i].klen);
        if (k < lo) continue;
        const auto* v = arena_.ptr<pmart::PmValue>(l->kv[i].p_value);
        arena_.pm_read(v, 1 + v->len);
        batch.emplace_back(std::move(k), std::string(v->data, v->len));
      }
    std::sort(batch.begin(), batch.end());  // leaves are unsorted
    for (auto& kv : batch) {
      out->push_back(std::move(kv));
      if (out->size() >= limit) break;
    }
    loff = l->next;
  }
  return out->size();
}

common::MemoryUsage FpTree::memory_usage() const {
  common::MemoryUsage u;
  u.dram_bytes = dram_bytes_.load(std::memory_order_relaxed);
  u.pm_bytes = arena_.stats().pm_live_bytes.load(std::memory_order_relaxed);
  return u;
}

void FpTree::recover() {
  if (!root_is_leaf_ && tree_root_ != 0) free_inner_rec(tree_root_, false);
  tree_root_ = 0;
  root_is_leaf_ = true;
  count_ = 0;

  finish_split_log();

  // Walk the persistent leaf list: re-mark allocations and collect the
  // (min-key, leaf) pairs for the bulk rebuild of the inner levels.
  arena_.reset_alloc_map();
  std::vector<std::pair<IKey, uint64_t>> level;
  uint64_t off = root_->head;
  while (off != 0) {
    arena_.mark_used(off, sizeof(FpLeaf));
    const FpLeaf* l = leaf_at(off);
    arena_.pm_read(l, sizeof(FpLeaf));
    const auto live = static_cast<uint32_t>(
        std::popcount(l->bitmap & kLeafFullMask));
    count_ += live;
    for (uint32_t i = 0; i < kLeafSlots; ++i)
      if ((l->bitmap >> i) & 1) {
        const auto* v = arena_.ptr<pmart::PmValue>(l->kv[i].p_value);
        arena_.mark_used(l->kv[i].p_value, 1 + v->len);
      }
    if (live > 0) level.emplace_back(leaf_min_key(l), off);
    off = l->next;
  }
  if (level.empty()) return;
  if (level.size() == 1) {
    tree_root_ = level[0].second;
    root_is_leaf_ = true;
    return;
  }
  // Bottom-up bulk build of the DRAM inner nodes.
  bool child_is_leaf = true;
  while (level.size() > 1) {
    std::vector<std::pair<IKey, uint64_t>> parents;
    size_t i = 0;
    while (i < level.size()) {
      const size_t take = std::min<size_t>(kInnerFan, level.size() - i);
      Inner* n = new_inner();
      n->child_is_leaf = child_is_leaf;
      n->count = static_cast<uint16_t>(take);
      for (size_t j = 0; j < take; ++j) {
        n->children[j] = level[i + j].second;
        if (j > 0) n->keys[j - 1] = level[i + j].first;
      }
      parents.emplace_back(level[i].first, inner_ref(n));
      i += take;
    }
    level.swap(parents);
    child_is_leaf = false;
  }
  tree_root_ = level[0].second;
  root_is_leaf_ = false;
}

}  // namespace hart::fptree
