// FPTree — Fingerprinting Persistent Tree (Oukid et al., SIGMOD 2016),
// reimplemented as the HART paper did for its evaluation.
//
// A hybrid SCM-DRAM B+-tree: inner nodes are volatile (DRAM, rebuilt on
// recovery from the persistent leaf list), leaf nodes live in PM. Leaves
// are *unsorted*; each carries a validity bitmap (the failure-atomic commit
// word), one-byte fingerprints of the in-leaf keys (a fingerprint scan
// limits full key comparisons to ~1 per lookup), and a next pointer forming
// the sorted leaf list used for range scans and recovery. Leaf splits are
// made failure-atomic with a small persistent micro-log. Leaves are never
// coalesced (the paper notes this as the reason FPTree consumes more PM).
// Single-writer, like the paper's single-threaded evaluation.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/index.h"
#include "pmem/arena.h"

namespace hart::fptree {

inline constexpr uint32_t kLeafSlots = 48;
inline constexpr uint32_t kInnerFan = 32;  // max children per inner node

/// Fixed-size key copy used in (volatile) inner nodes.
struct IKey {
  uint8_t len = 0;
  char b[common::kMaxKeyLen] = {};

  static IKey of(std::string_view s) {
    IKey k;
    k.len = static_cast<uint8_t>(s.size());
    for (size_t i = 0; i < s.size(); ++i) k.b[i] = s[i];
    return k;
  }
  [[nodiscard]] std::string_view view() const { return {b, len}; }
  friend bool operator<(const IKey& a, const IKey& b) {
    return a.view() < b.view();
  }
};

/// Persistent leaf node. Like the bpt-based implementation the paper
/// started from, entries hold a pointer to an out-of-leaf value object
/// (allocated per record from the raw PM allocator — FPTree has no
/// EPallocator-style amortization).
struct FpLeaf {
  uint64_t bitmap;          // slot validity; single-word atomic commit
  uint8_t fp[kLeafSlots];   // one-byte key fingerprints
  uint64_t next;            // next leaf in key order (0 = end)
  struct Entry {
    uint64_t p_value;       // arena offset of a pmart::PmValue
    char key[common::kMaxKeyLen];
    uint8_t klen;
    uint8_t pad[7];
  } kv[kLeafSlots];
};
static_assert(sizeof(FpLeaf::Entry) == 40);

class FpTree final : public common::Index {
 public:
  explicit FpTree(pmem::Arena& arena);
  ~FpTree() override;

  common::Status insert(std::string_view key, std::string_view value) override;
  common::Status search(std::string_view key, std::string* out) const override;
  common::Status update(std::string_view key, std::string_view value) override;
  common::Status remove(std::string_view key) override;
  size_t range(std::string_view lo, size_t limit,
               std::vector<std::pair<std::string, std::string>>* out)
      const override;
  size_t size() const override { return count_; }
  common::MemoryUsage memory_usage() const override;
  const char* name() const override { return "FPTree"; }

  /// Rebuild the DRAM inner nodes (and the allocation map) from the
  /// persistent leaf list — the operation timed in Fig. 10c.
  void recover();

 private:
  struct Root {               // persistent root (arena header)
    uint64_t magic;
    uint64_t head;            // first leaf in the list
    uint64_t slog_cur;        // split micro-log: leaf being split
    uint64_t slog_new;        // split micro-log: its new right sibling
  };
  struct Inner {              // volatile inner node
    bool child_is_leaf = false;
    uint16_t count = 0;       // number of children
    IKey keys[kInnerFan - 1];
    uint64_t children[kInnerFan];  // Inner* (cast) or leaf offset
  };
  struct Split {              // propagated up after a child split
    bool happened = false;
    IKey sep;
    uint64_t right = 0;
  };

  static uint8_t fingerprint(std::string_view key);
  FpLeaf* leaf_at(uint64_t off) const { return arena_.ptr<FpLeaf>(off); }
  Inner* inner_at(uint64_t ref) const {
    return reinterpret_cast<Inner*>(static_cast<uintptr_t>(ref));
  }
  static uint64_t inner_ref(Inner* p) {
    return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(p));
  }
  Inner* new_inner();
  void free_inner_rec(uint64_t ref, bool is_leaf_level);

  /// Slot of `key` in `l`, or -1 (fingerprint scan + key verify).
  int find_slot(const FpLeaf* l, std::string_view key, uint8_t fp) const;
  int free_slot(const FpLeaf* l) const;
  uint64_t alloc_leaf();
  IKey leaf_min_key(const FpLeaf* l) const;

  /// Descend to the leaf that should hold `key` (read-only).
  uint64_t descend(std::string_view key) const;

  Split insert_rec(uint64_t ref, bool is_leaf, std::string_view key,
                   std::string_view value, bool* inserted);
  Split split_leaf(uint64_t leaf_off);
  void leaf_put(FpLeaf* l, int slot, std::string_view key,
                std::string_view value, uint8_t fp);
  void finish_split_log();

  pmem::Arena& arena_;
  Root* root_;
  uint64_t tree_root_ = 0;  // leaf offset or Inner ref (volatile)
  bool root_is_leaf_ = true;
  size_t count_ = 0;
  std::atomic<uint64_t> dram_bytes_{0};
};

}  // namespace hart::fptree
