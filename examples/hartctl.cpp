// hartctl — administration tool for a file-backed HART persistent-memory
// image: verify integrity (fsck), print statistics, dump contents, and
// force a recovery pass.
//
//   $ ./examples/hartctl <file> verify          # offline integrity check
//   $ ./examples/hartctl <file> stats           # allocator + tree stats
//   $ ./examples/hartctl <file> dump [lo] [n]   # ordered key dump
//   $ ./examples/hartctl <file> recover [T]     # recover (T threads)
#include <iostream>
#include <string>

#include "common/stopwatch.h"
#include "common/table.h"
#include "epalloc/chunk.h"
#include "hart/hart.h"
#include "hart/verify.h"

namespace {

int usage(const char* prog) {
  std::cerr << "usage: " << prog
            << " <file> verify | stats | dump [lo] [n] | recover [threads]\n";
  return 2;
}

const char* type_name(int t) {
  switch (t) {
    case 0: return "leaf";
    case 1: return "value8";
    case 2: return "value16";
    case 3: return "value32";
    default: return "value64";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string file = argv[1];
  const std::string cmd = argv[2];

  hart::pmem::Arena::Options opts;
  opts.size = 256 << 20;
  opts.file_path = file;
  hart::pmem::Arena arena(opts);
  if (!arena.reopened()) {
    std::cerr << "warning: " << file
              << " was not an existing arena (fresh image created)\n";
  }

  if (cmd == "verify") {
    // Offline: no Hart instance, the raw image is inspected as-is.
    const auto report = hart::core::verify_hart_image(arena);
    std::cout << report.summary() << "\n";
    for (const auto& issue : report.issues)
      std::cout << (issue.severity ==
                            hart::core::VerifyIssue::Severity::kError
                        ? "  ERROR: "
                        : "  warn:  ")
                << issue.what << "\n";
    return report.ok() ? 0 : 1;
  }

  if (cmd == "stats") {
    hart::core::Hart index(arena);  // recovers
    const auto mem = index.memory_usage();
    hart::common::Table t({"metric", "value"});
    t.add_row({"records", std::to_string(index.size())});
    t.add_row({"ARTs (hash partitions)",
               std::to_string(index.partition_count())});
    t.add_row({"hash key length (kh)",
               std::to_string(index.hash_key_len())});
    t.add_row({"PM bytes", std::to_string(mem.pm_bytes)});
    t.add_row({"DRAM bytes", std::to_string(mem.dram_bytes)});
    for (int ty = 0; ty < hart::epalloc::kNumObjTypes; ++ty) {
      const auto ot = static_cast<hart::epalloc::ObjType>(ty);
      t.add_row({std::string(type_name(ty)) + " chunks",
                 std::to_string(index.allocator().chunk_count(ot))});
      t.add_row({std::string(type_name(ty)) + " live objects",
                 std::to_string(index.allocator().live_objects(ot))});
    }
    t.print();
    return 0;
  }

  if (cmd == "dump") {
    hart::core::Hart index(arena);
    const std::string lo = argc > 3 ? argv[3] : "";
    const size_t limit = argc > 4 ? std::stoul(argv[4]) : index.size();
    if (index.size() == 0) return 0;
    std::vector<std::pair<std::string, std::string>> out;
    if (lo.empty()) {
      // Find the first key via a cursor starting from the lowest byte.
      hart::core::HartCursor cur(index, std::string(1, '\x01'), 512);
      size_t n = 0;
      for (; cur.valid() && n < limit; cur.next(), ++n)
        std::cout << cur.key() << " = " << cur.value() << "\n";
    } else {
      index.range(lo, limit, &out);
      for (const auto& [k, v] : out) std::cout << k << " = " << v << "\n";
    }
    return 0;
  }

  if (cmd == "recover") {
    const unsigned threads = argc > 3
                                 ? static_cast<unsigned>(std::stoul(argv[3]))
                                 : 1;
    hart::common::Stopwatch sw;
    hart::core::Hart index(arena);
    const double first = sw.seconds();
    sw.reset();
    index.recover(threads);
    std::cout << "recovered " << index.size() << " records; constructor "
              << first << " s, explicit recover(" << threads << ") "
              << sw.seconds() << " s\n";
    const auto report = hart::core::verify_hart_image(arena);
    std::cout << report.summary() << "\n";
    return report.ok() ? 0 : 1;
  }

  return usage(argv[0]);
}
