// Quickstart: create a HART on an emulated PM device, do the four basic
// operations and an ordered scan, then demonstrate recovery (Algorithm 7).
//
//   $ ./examples/quickstart
#include <cassert>
#include <iostream>

#include "hart/hart.h"

int main() {
  // One Arena is one emulated PM device. Latency injection off: this is a
  // functional demo (the bench/ harness measures performance).
  hart::pmem::Arena::Options opts;
  opts.size = 64 << 20;
  hart::pmem::Arena arena(opts);

  // A fresh arena gets initialized; kh = 2 means the first two key bytes
  // select the ART through the DRAM hash table (the paper's default).
  hart::core::Hart index(arena, {.hash_key_len = 2});

  // Insert. Keys are 1..24 NUL-free bytes; values are 1..64 bytes.
  index.insert("apple", "fruit");
  index.insert("apricot", "fruit");
  index.insert("avocado", "berry?");
  index.insert("banana", "fruit");

  // Search.
  std::string v;
  const bool found = index.search("apple", &v).ok();
  std::cout << "apple found: " << found << ", value: " << v << "\n";

  // Update (out-of-place, crash-safe through the update micro-log).
  index.update("avocado", "berry");
  index.search("avocado", &v);
  std::cout << "avocado -> " << v << "\n";

  // Delete.
  index.remove("banana");
  std::cout << "banana present: " << index.search("banana", nullptr).ok()
            << "\n";

  // Ordered scan from a lower bound.
  std::vector<std::pair<std::string, std::string>> out;
  index.range("ap", 10, &out);
  std::cout << "range from \"ap\":\n";
  for (const auto& [key, value] : out)
    std::cout << "  " << key << " -> " << value << "\n";

  // Recovery: a second Hart on the same arena rebuilds the hash table and
  // all internal nodes from the persistent leaf chunks.
  hart::core::Hart recovered(arena);
  std::cout << "recovered " << recovered.size() << " records; apple: "
            << (recovered.search("apple", &v).ok() ? v : "<missing>") << "\n";

  const auto mem = index.memory_usage();
  std::cout << "PM bytes: " << mem.pm_bytes
            << ", DRAM bytes: " << mem.dram_bytes << "\n";
  return 0;
}
