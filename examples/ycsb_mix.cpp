// Run a YCSB-style mixed workload (the paper's Fig. 9 mixes) against any of
// the four trees, with a chosen PM latency configuration.
//
//   $ ./examples/ycsb_mix                    # defaults: hart ri 300/300
//   $ ./examples/ycsb_mix woart wi 600/300 200000 zipf
//   trees: hart woart artcow fptree
//   mixes: ri (read-intensive) rmw (read-modified-write) wi (write-intensive)
//   latencies: 300/100 300/300 600/300 off
//   distributions: uniform (paper) zipf latest (extensions)
#include <iostream>
#include <memory>
#include <string>

#include "artcow/artcow.h"
#include "common/stopwatch.h"
#include "fptree/fptree.h"
#include "hart/hart.h"
#include "woart/woart.h"
#include "workload/keygen.h"
#include "workload/mixes.h"

int main(int argc, char** argv) {
  const std::string tree = argc > 1 ? argv[1] : "hart";
  const std::string mix_name = argc > 2 ? argv[2] : "ri";
  const std::string lat_name = argc > 3 ? argv[3] : "300/300";
  const size_t n_ops = argc > 4 ? std::stoul(argv[4]) : 100000;
  const std::string dist_name = argc > 5 ? argv[5] : "uniform";
  hart::workload::DistKind dist = hart::workload::DistKind::kUniform;
  if (dist_name == "zipf") dist = hart::workload::DistKind::kZipfian;
  else if (dist_name == "latest") dist = hart::workload::DistKind::kLatest;

  hart::pmem::LatencyConfig lat = hart::pmem::LatencyConfig::off();
  if (lat_name == "300/100") lat = hart::pmem::LatencyConfig::c300_100();
  else if (lat_name == "300/300") lat = hart::pmem::LatencyConfig::c300_300();
  else if (lat_name == "600/300") lat = hart::pmem::LatencyConfig::c600_300();

  const hart::workload::MixSpec* mix = &hart::workload::kReadIntensive;
  if (mix_name == "rmw") mix = &hart::workload::kReadModifyWrite;
  else if (mix_name == "wi") mix = &hart::workload::kWriteIntensive;

  hart::pmem::Arena::Options opts;
  opts.size = size_t{1} << 30;
  opts.latency = lat;
  hart::pmem::Arena arena(opts);

  std::unique_ptr<hart::common::Index> index;
  if (tree == "woart") index = std::make_unique<hart::pmart::Woart>(arena);
  else if (tree == "artcow") index = std::make_unique<hart::pmart::ArtCow>(arena);
  else if (tree == "fptree") index = std::make_unique<hart::fptree::FpTree>(arena);
  else index = std::make_unique<hart::core::Hart>(arena);

  const size_t preload = n_ops / 2;
  const auto pool = hart::workload::make_random(preload + n_ops / 2 + 16, 7);
  const auto ops = hart::workload::make_mixed_ops(n_ops, preload,
                                                  pool.size(), *mix, 3, dist);

  for (size_t i = 0; i < preload; ++i) index->insert(pool[i], "00000000");

  hart::common::Stopwatch sw;
  std::string v;
  size_t done[4] = {0, 0, 0, 0};
  for (const auto& op : ops) {
    const std::string& key = pool[op.key_idx];
    switch (op.type) {
      case hart::workload::OpType::kInsert: index->insert(key, "11111111"); break;
      case hart::workload::OpType::kSearch: index->search(key, &v); break;
      case hart::workload::OpType::kUpdate: index->update(key, "22222222"); break;
      case hart::workload::OpType::kDelete: index->remove(key); break;
    }
    ++done[static_cast<int>(op.type)];
  }
  const double secs = sw.seconds();

  std::cout << index->name() << ", " << mix->name << ", " << lat_name
            << ", " << hart::workload::dist_name(dist)
            << ", " << n_ops << " ops over " << preload
            << " preloaded records\n"
            << "  inserts=" << done[0] << " searches=" << done[1]
            << " updates=" << done[2] << " deletes=" << done[3] << "\n"
            << "  total " << secs << " s, "
            << secs * 1e6 / static_cast<double>(n_ops) << " us/op, "
            << static_cast<double>(n_ops) / secs / 1e6 << " Mops/s\n";
  const auto mem = index->memory_usage();
  std::cout << "  PM " << mem.pm_bytes / 1048576.0 << " MB, DRAM "
            << mem.dram_bytes / 1048576.0 << " MB\n";
  return 0;
}
