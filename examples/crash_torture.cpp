// Crash-torture demo: sweep a simulated crash across the persist points of
// a write-heavy run, recover after each crash, and verify HART's
// guarantees — committed data survives, uncommitted data vanishes, and no
// persistent memory leaks (the byte accounting balances against the
// reachable chunks every time).
//
//   $ ./examples/crash_torture [sweeps=40]
#include <iostream>
#include <map>
#include <string>

#include "common/rng.h"
#include "hart/hart.h"
#include "workload/keygen.h"

int main(int argc, char** argv) {
  const uint64_t sweeps = argc > 1 ? std::stoul(argv[1]) : 40;
  const auto keys = hart::workload::make_random(400, 99, 4, 12);

  uint64_t crashes = 0, total_committed = 0;
  for (uint64_t sweep = 1; sweep <= sweeps; ++sweep) {
    const uint64_t crash_at = sweep * 37;  // deeper into the run each time

    hart::pmem::Arena::Options opts;
    opts.size = 64 << 20;
    opts.shadow = true;  // crash simulation needs the flush-tracking shadow
    hart::pmem::Arena arena(opts);

    size_t committed = 0;
    {
      hart::core::Hart index(arena);
      arena.arm_crash_after(crash_at);
      try {
        hart::common::Rng rng(sweep);
        for (const auto& k : keys) {
          index.insert(k, "v" + k.substr(0, 4));
          ++committed;
          if (rng.next_below(4) == 0) {
            index.update(k, "u" + k.substr(0, 4));
          }
        }
        arena.disarm_crash();
      } catch (const hart::pmem::CrashPoint&) {
        arena.crash();  // lose everything that was not flushed
        ++crashes;
      }
    }

    // Recovery: rebuild DRAM state from the persistent leaf chunks.
    hart::core::Hart recovered(arena);

    // 1) committed keys present, 2) at most the in-flight op extra.
    size_t present = 0;
    for (size_t i = 0; i < committed; ++i) {
      std::string v;
      if (!recovered.search(keys[i], &v).ok()) {
        std::cerr << "LOST committed key " << keys[i] << " (crash_at="
                  << crash_at << ")\n";
        return 1;
      }
      ++present;
    }
    if (recovered.size() > committed + 1) {
      std::cerr << "phantom keys after recovery\n";
      return 1;
    }

    // 3) leak freedom: PM live bytes == bytes of reachable chunks.
    uint64_t reachable = 0;
    for (auto t : {hart::epalloc::ObjType::kLeaf,
                   hart::epalloc::ObjType::kValue8,
                   hart::epalloc::ObjType::kValue16,
                   hart::epalloc::ObjType::kValue32,
                   hart::epalloc::ObjType::kValue64})
      reachable += recovered.allocator().chunk_count(t) *
                   recovered.allocator().geom(t).chunk_bytes;
    if (arena.stats().pm_live_bytes.load() != reachable) {
      std::cerr << "LEAK: live=" << arena.stats().pm_live_bytes.load()
                << " reachable=" << reachable << "\n";
      return 1;
    }
    total_committed += present;
  }

  std::cout << "crash torture: " << sweeps << " sweeps, " << crashes
            << " crashes fired, " << total_committed
            << " committed records verified, 0 lost, 0 leaked\n";
  return 0;
}
