// A durable key-value store CLI on a file-backed arena: data survives
// process restarts, exactly like a PM-resident index would survive a
// reboot. Each invocation re-opens the file and runs HART's recovery.
//
//   $ ./examples/persistent_kv /tmp/shop.pm put apples 12
//   $ ./examples/persistent_kv /tmp/shop.pm put pears 7
//   $ ./examples/persistent_kv /tmp/shop.pm get apples
//   12
//   $ ./examples/persistent_kv /tmp/shop.pm scan a 10
//   apples = 12
//   pears = 7
//   $ ./examples/persistent_kv /tmp/shop.pm del apples
//   $ ./examples/persistent_kv /tmp/shop.pm stats
#include <cstring>
#include <iostream>
#include <string>

#include "hart/hart.h"

namespace {

int usage(const char* prog) {
  std::cerr << "usage: " << prog
            << " <file> put <key> <value> | get <key> | del <key> | "
               "scan <lo> <n> | stats\n"
               "keys: 1..24 bytes (no NUL); values: 1..64 bytes\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string file = argv[1];
  const std::string cmd = argv[2];

  hart::pmem::Arena::Options opts;
  opts.size = 256 << 20;
  opts.file_path = file;
  hart::pmem::Arena arena(opts);
  hart::core::Hart index(arena);  // re-opens + recovers if the file exists

  try {
    if (cmd == "put" && argc == 5) {
      index.insert(argv[3], argv[4]);
      return 0;
    }
    if (cmd == "get" && argc == 4) {
      std::string v;
      if (!index.search(argv[3], &v).ok()) {
        std::cerr << "not found\n";
        return 1;
      }
      std::cout << v << "\n";
      return 0;
    }
    if (cmd == "del" && argc == 4) {
      if (!index.remove(argv[3]).ok()) {
        std::cerr << "not found\n";
        return 1;
      }
      return 0;
    }
    if (cmd == "scan" && argc == 5) {
      std::vector<std::pair<std::string, std::string>> out;
      index.range(argv[3], std::stoul(argv[4]), &out);
      for (const auto& [k, v] : out) std::cout << k << " = " << v << "\n";
      return 0;
    }
    if (cmd == "stats" && argc == 3) {
      const auto mem = index.memory_usage();
      std::cout << "records:     " << index.size() << "\n"
                << "ARTs:        " << index.partition_count() << "\n"
                << "PM bytes:    " << mem.pm_bytes << "\n"
                << "DRAM bytes:  " << mem.dram_bytes << "\n"
                << "(re-opened:  " << (arena.reopened() ? "yes" : "no")
                << ")\n";
      return 0;
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage(argv[0]);
}
